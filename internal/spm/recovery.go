package spm

import (
	"errors"
	"fmt"

	"ftspm/internal/memtech"
)

// This file defines the runtime error-recovery subsystem the controller
// threads through its hot path: detection outcomes surfaced by the
// regions (parity DUE, SEC-DED double-bit DUE, corrected SBU, write-
// verify failure) trigger a recovery policy instead of being merely
// counted. The paper's software-managed SPM makes this possible: clean
// blocks have golden copies off-chip (the compiler placed them there),
// so a detected-uncorrectable word in a clean block is recoverable by a
// DRAM re-fetch, and only dirty-block DUEs must escalate. See DESIGN.md
// §9 for the full model.

// DUEPolicy selects how the controller handles a detected-uncorrectable
// error in a *dirty* block — one whose only up-to-date copy is the
// corrupted SPM content itself.
type DUEPolicy int

// Dirty-block DUE policies.
const (
	// DUEAsSDC consumes the corrupted data and counts the event: the
	// model of a system without checkpointing, where a dirty-block DUE
	// is architecturally equivalent to silent corruption (the signal
	// exists but nothing can act on it).
	DUEAsSDC DUEPolicy = iota + 1
	// DUERollback restores the word from the last checkpointed value
	// and charges RollbackCycles — the STT-RAM checkpointing direction
	// of Rathi et al. (PAPERS.md). The simulator's golden copy stands
	// in for the checkpoint image.
	DUERollback
)

// String implements fmt.Stringer.
func (p DUEPolicy) String() string {
	switch p {
	case DUEAsSDC:
		return "sdc"
	case DUERollback:
		return "rollback"
	default:
		return fmt.Sprintf("DUEPolicy(%d)", int(p))
	}
}

// Valid reports whether p is a known policy.
func (p DUEPolicy) Valid() bool { return p == DUEAsSDC || p == DUERollback }

// RecoveryConfig parameterizes the controller's runtime error-recovery
// subsystem. The zero value is invalid; start from DefaultRecovery.
type RecoveryConfig struct {
	// MaxRefetchRetries bounds the DRAM re-fetch attempts per DUE word
	// (each attempt is a burst read, a region re-write, and a verify
	// read, all charged). 0 still allows the initial attempt.
	MaxRefetchRetries int
	// DirtyPolicy handles DUEs in dirty blocks, which cannot be
	// re-fetched.
	DirtyPolicy DUEPolicy
	// RollbackCycles is the penalty charged per DUERollback restore
	// (checkpoint-restore time).
	RollbackCycles memtech.Cycles
	// ScrubInterval is the number of controller accesses between
	// background scrub walks over the protected regions (0 disables
	// scrubbing).
	ScrubInterval uint64
	// RemapThreshold is the number of permanent-fault events observed
	// on one resident block before the controller migrates it out of
	// its failing region (0 disables graceful degradation).
	RemapThreshold int
}

// DefaultRecovery returns the settings used by the soak campaigns:
// bounded re-fetch, checkpoint rollback for dirty DUEs, scrubbing every
// 4096 accesses, and remap after two permanent faults on one block.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		MaxRefetchRetries: 2,
		DirtyPolicy:       DUERollback,
		RollbackCycles:    5000,
		ScrubInterval:     4096,
		RemapThreshold:    2,
	}
}

// Errors returned by the recovery subsystem.
var (
	ErrBadRecoveryConfig = errors.New("spm: invalid recovery config")
	ErrBadWearConfig     = errors.New("spm: invalid wear config")
)

// Validate checks the configuration.
func (c RecoveryConfig) Validate() error {
	if c.MaxRefetchRetries < 0 {
		return fmt.Errorf("%w: MaxRefetchRetries %d", ErrBadRecoveryConfig, c.MaxRefetchRetries)
	}
	if !c.DirtyPolicy.Valid() {
		return fmt.Errorf("%w: DirtyPolicy %d", ErrBadRecoveryConfig, int(c.DirtyPolicy))
	}
	if c.RollbackCycles < 0 {
		return fmt.Errorf("%w: RollbackCycles %d", ErrBadRecoveryConfig, c.RollbackCycles)
	}
	if c.RemapThreshold < 0 {
		return fmt.Errorf("%w: RemapThreshold %d", ErrBadRecoveryConfig, c.RemapThreshold)
	}
	return nil
}

// RecoveryStats counts the recovery subsystem's activity. It is part of
// ControllerStats, so the sim result carries one per SPM controller.
type RecoveryStats struct {
	// CorrectedOnAccess counts single-bit upsets repaired in-line by
	// ECC during controller accesses (DREs on the hot path).
	CorrectedOnAccess uint64
	// RefetchedWords counts clean-block DUE words recovered by a DRAM
	// re-fetch.
	RefetchedWords uint64
	// RefetchRetries counts re-fetch attempts beyond the first.
	RefetchRetries uint64
	// Rollbacks counts dirty-block DUE words restored under
	// DUERollback.
	Rollbacks uint64
	// SDCEscalations counts dirty-block DUE words consumed under
	// DUEAsSDC.
	SDCEscalations uint64
	// UnrecoveredDUEs counts DUE words left standing: recovery
	// disabled, or re-fetch retries exhausted.
	UnrecoveredDUEs uint64
	// ScrubRuns counts background scrub walks.
	ScrubRuns uint64
	// ScrubRepairs counts ECC-corrected words rewritten in place by the
	// scrubber.
	ScrubRepairs uint64
	// ScrubRefetches counts clean-resident DUE words the scrubber
	// recovered from DRAM.
	ScrubRefetches uint64
	// ScrubRestores counts DUE words the scrubber restored from the
	// checkpoint/golden copy (free-space words and dirty blocks under
	// DUERollback).
	ScrubRestores uint64
	// ScrubDUEs counts DUE words the scrubber found but could not
	// repair (dirty blocks under DUEAsSDC).
	ScrubDUEs uint64
	// WriteRetries counts write-verify retry attempts (STT-RAM
	// transient write failures).
	WriteRetries uint64
	// StuckWordEvents counts write-verify failures that remained after
	// retry: words observed holding permanently-stuck cells.
	StuckWordEvents uint64
	// Remaps counts blocks migrated out of a failing region into a
	// fallback region.
	Remaps uint64
	// Demotions counts blocks degraded out of the SPM entirely (no
	// fallback region could hold them; the cache hierarchy serves them
	// from then on).
	Demotions uint64
	// RetiredWords counts words permanently removed from allocation
	// because they hold stuck cells.
	RetiredWords uint64
	// RecoveryCycles is the total stall charged to recovery actions
	// (re-fetches, rollbacks, scrub walks, migrations).
	RecoveryCycles memtech.Cycles
	// FirstDegradedTick is the controller tick of the first remap or
	// demotion (0 = the structure never degraded). Ticks advance once
	// per Access/MapIn, so this is the paper-style time-to-degraded in
	// access counts.
	FirstDegradedTick uint64
}

// Recovered returns the total error events the subsystem repaired.
func (s RecoveryStats) Recovered() uint64 {
	return s.CorrectedOnAccess + s.RefetchedWords + s.Rollbacks +
		s.ScrubRepairs + s.ScrubRefetches + s.ScrubRestores
}

// DUEs returns the total detected-uncorrectable words that recovery
// could not transparently repair (escalations included).
func (s RecoveryStats) DUEs() uint64 {
	return s.UnrecoveredDUEs + s.SDCEscalations + s.ScrubDUEs
}

// Add accumulates o into s (used to merge the two controllers' stats
// and to aggregate soak trials).
func (s *RecoveryStats) Add(o RecoveryStats) {
	s.CorrectedOnAccess += o.CorrectedOnAccess
	s.RefetchedWords += o.RefetchedWords
	s.RefetchRetries += o.RefetchRetries
	s.Rollbacks += o.Rollbacks
	s.SDCEscalations += o.SDCEscalations
	s.UnrecoveredDUEs += o.UnrecoveredDUEs
	s.ScrubRuns += o.ScrubRuns
	s.ScrubRepairs += o.ScrubRepairs
	s.ScrubRefetches += o.ScrubRefetches
	s.ScrubRestores += o.ScrubRestores
	s.ScrubDUEs += o.ScrubDUEs
	s.WriteRetries += o.WriteRetries
	s.StuckWordEvents += o.StuckWordEvents
	s.Remaps += o.Remaps
	s.Demotions += o.Demotions
	s.RetiredWords += o.RetiredWords
	s.RecoveryCycles += o.RecoveryCycles
	if s.FirstDegradedTick == 0 ||
		(o.FirstDegradedTick != 0 && o.FirstDegradedTick < s.FirstDegradedTick) {
		s.FirstDegradedTick = o.FirstDegradedTick
	}
}

// WearConfig models STT-RAM write unreliability: the stochastic
// write failures of failure-aware STT-MRAM design (Pajouhi et al.,
// PAPERS.md) plus permanent wear-out. Every word write can fail
// transiently (the magnetic tunnel junction does not switch; a
// write-verify read catches it and the write retries) and can wear a
// cell out permanently (the cell sticks at its current value). Applied
// to STT-RAM regions via SPM.EnableWear; SRAM regions never wear.
type WearConfig struct {
	// WriteFailProb is the per-word probability that one write attempt
	// fails to switch and must be retried.
	WriteFailProb float64
	// MaxWriteRetries bounds verify-retry attempts per word write;
	// beyond it the word is left with an unswitched cell.
	MaxWriteRetries int
	// StuckAtProb is the per-word-write probability that one cell of
	// the word wears out and sticks permanently at its current value.
	StuckAtProb float64
	// Seed drives the wear process (per-region streams are derived
	// from it).
	Seed int64
}

// Validate checks the configuration.
func (c WearConfig) Validate() error {
	if c.WriteFailProb < 0 || c.WriteFailProb > 1 {
		return fmt.Errorf("%w: WriteFailProb %v", ErrBadWearConfig, c.WriteFailProb)
	}
	if c.StuckAtProb < 0 || c.StuckAtProb > 1 {
		return fmt.Errorf("%w: StuckAtProb %v", ErrBadWearConfig, c.StuckAtProb)
	}
	if c.MaxWriteRetries < 0 {
		return fmt.Errorf("%w: MaxWriteRetries %d", ErrBadWearConfig, c.MaxWriteRetries)
	}
	return nil
}

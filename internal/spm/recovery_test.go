package spm

import (
	"errors"
	"math/rand"
	"testing"

	"ftspm/internal/dram"
	"ftspm/internal/program"
)

// recoveryFixture is ctlFixture with the recovery subsystem enabled.
func recoveryFixture(t *testing.T, rc RecoveryConfig) (*Controller, *program.Program, map[string]program.BlockID) {
	t.Helper()
	ctl, p, ids := ctlFixture(t)
	if err := ctl.EnableRecovery(rc); err != nil {
		t.Fatal(err)
	}
	return ctl, p, ids
}

// checkSpaceInvariant asserts that every word of the region is exactly
// one of: free, resident, or retired — the allocator's conservation law
// under eviction, retirement, and remapping.
func checkSpaceInvariant(t *testing.T, ctl *Controller, regionIdx int) {
	t.Helper()
	r, err := ctl.spm.Region(regionIdx)
	if err != nil {
		t.Fatal(err)
	}
	free := 0
	for _, iv := range ctl.free[regionIdx] {
		free += iv.n
	}
	resident := 0
	for _, res := range ctl.resident {
		if res.live && res.region == regionIdx {
			resident += res.words
		}
	}
	if total := free + resident + r.RetiredWordCount(); total != r.Words() {
		t.Errorf("region %d space leak: free %d + resident %d + retired %d != %d",
			regionIdx, free, resident, r.RetiredWordCount(), r.Words())
	}
}

func TestRecoveryConfigValidation(t *testing.T) {
	if err := (RecoveryConfig{}).Validate(); err == nil {
		t.Error("zero config accepted (no DUE policy)")
	}
	bad := DefaultRecovery()
	bad.MaxRefetchRetries = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative retries accepted")
	}
	ctl, _, _ := ctlFixture(t)
	if err := ctl.EnableRecovery(RecoveryConfig{}); err == nil {
		t.Error("EnableRecovery accepted invalid config")
	}
	if err := (WearConfig{WriteFailProb: 1.5}).Validate(); err == nil {
		t.Error("out-of-range WriteFailProb accepted")
	}
}

func TestRefetchRecoversCleanParityDUE(t *testing.T) {
	// Acceptance (b): a parity DUE in a clean block is recovered by a
	// DRAM re-fetch, with nonzero cycles and energy charged.
	rc := DefaultRecovery()
	rc.ScrubInterval = 0 // isolate the on-access path
	ctl, _, ids := recoveryFixture(t, rc)
	stack := ids["Stack"]

	// Map the block in clean, then land a single-bit strike on its
	// first word: parity always detects odd flip counts.
	if _, err := ctl.Access(stack, 0, 4, false); err != nil {
		t.Fatal(err)
	}
	r, ok := ctl.spm.RegionByKind(RegionParity)
	if !ok {
		t.Fatal("no parity region")
	}
	res := ctl.resident[stack]
	if flipped, err := r.InjectStrike(rand.New(rand.NewSource(9)), res.baseWord, 1); err != nil || !flipped {
		t.Fatalf("strike: flipped=%v err=%v", flipped, err)
	}
	energyBefore := r.Stats().Energy
	dramReadsBefore := ctl.mem.Stats().WordsRead

	cost, err := ctl.Access(stack, 0, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats().Recovery
	if st.RefetchedWords != 1 {
		t.Fatalf("RefetchedWords = %d, want 1 (stats %+v)", st.RefetchedWords, st)
	}
	if st.UnrecoveredDUEs != 0 || st.Rollbacks != 0 {
		t.Errorf("clean-block DUE escalated: %+v", st)
	}
	// The recovery is charged: re-fetch burst + rewrite + verify on top
	// of the 1-cycle parity read.
	if st.RecoveryCycles == 0 || cost.Cycles <= 1 {
		t.Errorf("recovery free of charge: cycles=%d recovery=%d", cost.Cycles, st.RecoveryCycles)
	}
	if r.Stats().Energy <= energyBefore {
		t.Error("recovery charged no region energy")
	}
	if ctl.mem.Stats().WordsRead <= dramReadsBefore {
		t.Error("recovery read nothing from DRAM")
	}
	// The word is actually repaired: the next read is silent and clean.
	detBefore := r.Stats().DetectedErrors
	if _, err := ctl.Access(stack, 0, 4, false); err != nil {
		t.Fatal(err)
	}
	if r.Stats().DetectedErrors != detBefore {
		t.Error("word still corrupt after re-fetch")
	}
	if r.Stats().SilentReads != 0 {
		t.Error("re-fetched word returned wrong data")
	}
}

func TestDirtyDUEPolicies(t *testing.T) {
	strike := func(t *testing.T, ctl *Controller, id program.BlockID) *Region {
		t.Helper()
		// Dirty the block, then corrupt the written word.
		if _, err := ctl.Access(id, 0, 4, true); err != nil {
			t.Fatal(err)
		}
		r, ok := ctl.spm.RegionByKind(RegionParity)
		if !ok {
			t.Fatal("no parity region")
		}
		res := ctl.resident[id]
		if _, err := r.InjectStrike(rand.New(rand.NewSource(3)), res.baseWord, 1); err != nil {
			t.Fatal(err)
		}
		return r
	}

	t.Run("rollback", func(t *testing.T) {
		rc := DefaultRecovery()
		rc.ScrubInterval = 0
		rc.RollbackCycles = 700
		ctl, _, ids := recoveryFixture(t, rc)
		r := strike(t, ctl, ids["Stack"])
		cost, err := ctl.Access(ids["Stack"], 0, 4, false)
		if err != nil {
			t.Fatal(err)
		}
		st := ctl.Stats().Recovery
		if st.Rollbacks != 1 || st.RefetchedWords != 0 {
			t.Errorf("dirty DUE not rolled back: %+v", st)
		}
		if cost.Cycles < 700 {
			t.Errorf("rollback penalty not charged: %d cycles", cost.Cycles)
		}
		// Restored from the checkpoint image: clean on the next read.
		detBefore := r.Stats().DetectedErrors
		if _, err := ctl.Access(ids["Stack"], 0, 4, false); err != nil {
			t.Fatal(err)
		}
		if r.Stats().DetectedErrors != detBefore {
			t.Error("word still corrupt after rollback")
		}
	})

	t.Run("sdc", func(t *testing.T) {
		rc := DefaultRecovery()
		rc.ScrubInterval = 0
		rc.DirtyPolicy = DUEAsSDC
		ctl, _, ids := recoveryFixture(t, rc)
		strike(t, ctl, ids["Stack"])
		if _, err := ctl.Access(ids["Stack"], 0, 4, false); err != nil {
			t.Fatal(err)
		}
		st := ctl.Stats().Recovery
		if st.SDCEscalations != 1 || st.Rollbacks != 0 {
			t.Errorf("dirty DUE not escalated: %+v", st)
		}
	})
}

func TestRecoveryOffCountsUnrecovered(t *testing.T) {
	ctl, _, ids := ctlFixture(t) // recovery NOT enabled
	if _, err := ctl.Access(ids["Stack"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	r, _ := ctl.spm.RegionByKind(RegionParity)
	if _, err := r.InjectStrike(rand.New(rand.NewSource(5)), ctl.resident[ids["Stack"]].baseWord, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Access(ids["Stack"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats().Recovery
	if st.UnrecoveredDUEs != 1 || st.RefetchedWords != 0 {
		t.Errorf("detection-only baseline mis-counted: %+v", st)
	}
}

func TestScrubberClearsLatentFreeSpaceError(t *testing.T) {
	// A strike on a free (unallocated) parity word is invisible to the
	// access path; only the background scrubber can clear it before a
	// later allocation consumes it.
	rc := DefaultRecovery()
	rc.ScrubInterval = 3
	ctl, _, ids := recoveryFixture(t, rc)
	r, _ := ctl.spm.RegionByKind(RegionParity)
	// Stack will occupy words 0..63; word 100 stays free.
	if _, err := r.InjectStrike(rand.New(rand.NewSource(8)), 100, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ctl.Access(ids["Stack"], 0, 4, false); err != nil {
			t.Fatal(err)
		}
	}
	st := ctl.Stats().Recovery
	if st.ScrubRuns == 0 {
		t.Fatal("scrubber never ran")
	}
	if st.ScrubRestores == 0 {
		t.Errorf("latent free-space error not restored: %+v", st)
	}
	if got := r.Audit(); got.DUE != 0 {
		t.Errorf("latent DUE survived scrubbing: %+v", got)
	}
}

// stickWord freezes one cell of the region word at the inverse of the
// bit the off-chip image will drive there, guaranteeing a write-verify
// failure on the next DMA-in of that word.
func stickWord(t *testing.T, r *Region, wordIdx int, imageWordAddr uint32) {
	t.Helper()
	want := dram.Value(imageWordAddr)
	if err := r.InjectStuckAt(wordIdx, 0, want&1 == 0); err != nil {
		t.Fatal(err)
	}
}

func TestStuckRegionTriggersRemapDegradedButCorrect(t *testing.T) {
	// Acceptance (c): a block mapped onto stuck STT-RAM cells migrates
	// to the next region in config order and the run continues with
	// correct data.
	rc := DefaultRecovery()
	rc.ScrubInterval = 0
	rc.RemapThreshold = 1
	ctl, p, ids := recoveryFixture(t, rc)
	hot := ids["Hot"]
	b, err := p.Block(hot)
	if err != nil {
		t.Fatal(err)
	}
	sttR, _ := ctl.spm.RegionByKind(RegionSTT)
	// Hot maps first, at word 0 of the empty STT region.
	stickWord(t, sttR, 0, b.Addr/4)

	cost, err := ctl.Access(hot, 0, 4, false)
	if err != nil {
		t.Fatalf("access during remap: %v", err)
	}
	st := ctl.Stats().Recovery
	if st.StuckWordEvents == 0 {
		t.Fatal("write-verify failure not observed")
	}
	if st.Remaps != 1 || st.Demotions != 0 {
		t.Fatalf("block did not remap: %+v", st)
	}
	if st.RetiredWords == 0 {
		t.Error("stuck word not retired from the failing region")
	}
	if st.FirstDegradedTick == 0 {
		t.Error("time-to-degraded not recorded")
	}
	if cost.Cycles == 0 {
		t.Error("migration was free")
	}
	if ctl.Placement()[hot] != RegionECC {
		t.Errorf("placement after remap = %v, want SRAM(ECC)", ctl.Placement()[hot])
	}
	// Degraded but correct: the relocated block serves the off-chip
	// image from the fallback region.
	cost, err = ctl.Access(hot, 0, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Kind != RegionECC {
		t.Errorf("served by %v after remap", cost.Kind)
	}
	eccR, _ := ctl.spm.RegionByKind(RegionECC)
	res := ctl.resident[hot]
	got, _, err := eccR.Read(res.baseWord, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := dram.Value(b.Addr / 4); got[0] != want {
		t.Errorf("relocated word = %#x, want %#x", got[0], want)
	}
	if eccR.Stats().SilentReads != 0 {
		t.Error("relocated block read corrupt data")
	}
	checkSpaceInvariant(t, ctl, 0)
	checkSpaceInvariant(t, ctl, 1)
}

func TestEvictUnderPressureRetiresAndRefits(t *testing.T) {
	// Fragmentation edge case: evicting a victim whose interval holds a
	// stuck cell retires that word, splitting the freed run. The next
	// allocation must first-fit around the hole and the space
	// accounting must stay conserved.
	rc := DefaultRecovery()
	rc.ScrubInterval = 0
	rc.RemapThreshold = 0 // no remapping: isolate the eviction path
	ctl, p, ids := recoveryFixture(t, rc)
	sttR, _ := ctl.spm.RegionByKind(RegionSTT)

	// Fill the 512-word STT region: Hot at 0..255, Hot2 at 256..511.
	if _, err := ctl.Access(ids["Hot"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Access(ids["Hot2"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	// A cell in the middle of Hot's interval wears out while resident.
	b, err := p.Block(ids["Hot"])
	if err != nil {
		t.Fatal(err)
	}
	stickWord(t, sttR, 100, b.Addr/4+100)
	// Touch Hot2 so Hot is LRU, then map Hot3 (128 words): Hot is
	// evicted under pressure and word 100 is retired on the way out.
	if _, err := ctl.Access(ids["Hot2"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Access(ids["Hot3"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	if ctl.IsResident(ids["Hot"]) {
		t.Fatal("LRU victim still resident")
	}
	if !ctl.IsResident(ids["Hot3"]) {
		t.Fatal("Hot3 not resident after eviction")
	}
	st := ctl.Stats().Recovery
	if st.RetiredWords != 1 || !sttR.IsRetired(100) {
		t.Errorf("stuck word not retired on eviction: %+v", st)
	}
	// Hot3 must have landed clear of the retired hole: first fit is
	// words 0..99 (the run before the hole is 100 words short of Hot's
	// old 256, but Hot3 needs only 128 → it lands at 101).
	res := ctl.resident[ids["Hot3"]]
	if res.baseWord <= 100 && res.baseWord+res.words > 100 {
		t.Errorf("Hot3 allocated across retired word: base %d + %d words", res.baseWord, res.words)
	}
	checkSpaceInvariant(t, ctl, 0)

	// Re-mapping Hot (256 words) still fits in the fragmented region
	// once Hot3's run and the leading fragment cannot hold it: it must
	// evict again rather than corrupt the free list.
	if _, err := ctl.Access(ids["Hot"], 0, 4, false); err != nil {
		t.Fatal(err)
	}
	checkSpaceInvariant(t, ctl, 0)
}

func TestDemoteWhenNoRegionFits(t *testing.T) {
	// Single-region SPM: a degrading block has no fallback region and
	// must be demoted to cache service; the access reports ErrNotMapped
	// and later accesses see the block unmapped.
	s, err := New(0, RegionConfig{Kind: RegionSTT, SizeBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	p := program.New("demote")
	a := p.MustAddBlock("A", program.DataBlock, 256)
	bb := p.MustAddBlock("B", program.DataBlock, 256)
	mem, err := dram.New(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(s, p, Placement{a: RegionSTT, bb: RegionSTT}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRecovery()
	rc.ScrubInterval = 0
	rc.RemapThreshold = 1
	if err := ctl.EnableRecovery(rc); err != nil {
		t.Fatal(err)
	}
	blkA, err := p.Block(a)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := s.Region(0)
	if err != nil {
		t.Fatal(err)
	}
	stickWord(t, r0, 0, blkA.Addr/4)

	// A maps onto the stuck cell and is demoted at the end of the
	// access (no fallback region exists).
	if _, err := ctl.Access(a, 0, 4, false); err != nil {
		t.Fatal(err)
	}
	if ctl.IsMapped(a) || ctl.IsResident(a) {
		t.Error("demoted block still mapped")
	}
	st := ctl.Stats().Recovery
	if st.Demotions != 1 || st.Remaps != 0 {
		t.Errorf("no-fit degradation: %+v", st)
	}
	// The region lost word 0 to retirement: B (the full 64 words) can
	// never be placed; the allocation failure demotes it mid-access.
	if _, err := ctl.Access(bb, 0, 4, false); !errors.Is(err, ErrNotMapped) {
		t.Errorf("allocation-failure demotion returned %v, want ErrNotMapped", err)
	}
	if ctl.IsMapped(bb) {
		t.Error("unplaceable block still mapped")
	}
	if ctl.Stats().Recovery.Demotions != 2 {
		t.Errorf("Demotions = %d, want 2", ctl.Stats().Recovery.Demotions)
	}
	checkSpaceInvariant(t, ctl, 0)
	// Demoted blocks answer ErrNotMapped from now on (cache path).
	if _, err := ctl.Access(a, 0, 4, false); !errors.Is(err, ErrNotMapped) {
		t.Errorf("post-demotion access: %v", err)
	}
}

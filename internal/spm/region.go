// Package spm models the ScratchPad Memory hardware of FTSPM: protection
// regions with real encoded storage (through the ecc codecs), the hybrid
// SPM assembled from them (Fig. 1), and the SPM controller that performs
// the on-line phase — mapping blocks in and out of regions with DMA
// transfers against the off-chip memory.
package spm

import (
	"errors"
	"fmt"
	"math/rand"

	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
)

// RegionKind identifies one of the protection levels of the proposed
// structure (Table IV legend).
type RegionKind int

// Region kinds.
const (
	// RegionSTT is STT-RAM: immune to particle strikes, slow and
	// expensive writes, limited write endurance.
	RegionSTT RegionKind = iota + 1
	// RegionECC is SEC-DED-protected SRAM: corrects 1-bit, detects
	// 2-bit upsets, 2-cycle accesses.
	RegionECC
	// RegionParity is parity-protected SRAM: detects 1-bit upsets,
	// 1-cycle accesses.
	RegionParity
	// RegionPlain is unprotected SRAM (used by the cache model and as a
	// reference point; no Table IV SPM uses it).
	RegionPlain
	// RegionDMR is duplicated SRAM (dual modular redundancy) — the
	// related-work duplication scheme [3] implemented as a comparison
	// structure: every word stored twice, reads compare the copies.
	RegionDMR
)

// String implements fmt.Stringer.
func (k RegionKind) String() string {
	switch k {
	case RegionSTT:
		return "STT-RAM"
	case RegionECC:
		return "SRAM(ECC)"
	case RegionParity:
		return "SRAM(parity)"
	case RegionPlain:
		return "SRAM"
	case RegionDMR:
		return "SRAM(DMR)"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Valid reports whether k is a known kind.
func (k RegionKind) Valid() bool {
	switch k {
	case RegionSTT, RegionECC, RegionParity, RegionPlain, RegionDMR:
		return true
	default:
		return false
	}
}

// Technology returns the cell technology of the kind.
func (k RegionKind) Technology() memtech.Technology {
	if k == RegionSTT {
		return memtech.STTRAM
	}
	return memtech.SRAM
}

// Protection returns the memtech protection level of the kind.
func (k RegionKind) Protection() memtech.Protection {
	switch k {
	case RegionECC:
		return memtech.SECDED
	case RegionParity:
		return memtech.Parity
	case RegionDMR:
		return memtech.DMR
	default:
		return memtech.Unprotected
	}
}

// Immune reports whether cells of this kind ignore particle strikes
// (STT-RAM per [9]).
func (k RegionKind) Immune() bool { return k == RegionSTT }

// VulnerabilityWeight returns the per-strike probability that an upset in
// this region escapes correction — the SDC+DUE probability the paper's
// equations (1)-(7) assign to the region:
//
//	STT-RAM      → 0            (immune)
//	SEC-DED SRAM → P(2) + P(≥3) (1-bit upsets are corrected)
//	parity SRAM  → P(1) + P(≥2) = 1 (nothing is correctable)
//	plain SRAM   → 1            (everything is silent corruption)
func (k RegionKind) VulnerabilityWeight(d faults.MBUDistribution) float64 {
	switch k {
	case RegionSTT:
		return 0
	case RegionECC:
		return d.PAtLeast(2)
	default:
		// Parity and plain SRAM: every upset escapes or is merely
		// detected; DMR detects nearly everything but recovers nothing,
		// so its DUE mass still counts toward eq. (1).
		return d.PAtLeast(1)
	}
}

func (k RegionKind) newCodec() (ecc.Codec, error) {
	switch k {
	case RegionECC:
		return ecc.NewHamming(32)
	case RegionParity:
		return ecc.NewParity(32)
	case RegionSTT, RegionPlain:
		return ecc.NewRaw(32)
	case RegionDMR:
		return ecc.NewDMR(32)
	default:
		return nil, fmt.Errorf("spm: no codec for %v", k)
	}
}

// RegionStats counts traffic and observed error events in one region.
type RegionStats struct {
	ReadAccesses, WriteAccesses uint64
	WordsRead, WordsWritten     uint64
	Energy                      memtech.Picojoules
	CorrectedErrors             uint64
	DetectedErrors              uint64
	// SilentReads counts reads that returned wrong data without any
	// error signal — consumed silent corruption. The hardware cannot
	// observe this; the simulator's golden copy can, which is what makes
	// empirical AVF validation possible (experiments.ValidateAVF).
	SilentReads uint64
}

// Errors returned by region and SPM operations.
var (
	ErrBadRegionSize = errors.New("spm: region size must be a positive multiple of the word size")
	ErrBadRegionKind = errors.New("spm: unknown region kind")
	ErrOutOfRange    = errors.New("spm: access outside region")
)

// Region is one contiguous protection region with encoded backing store.
type Region struct {
	kind   RegionKind
	bank   memtech.Bank
	codec  ecc.Codec
	words  []ecc.Bits // encoded codewords, one per 32-bit data word
	golden []uint32   // last written payloads, for audit classification
	writes []uint64   // per-word write counters (endurance analysis)
	stats  RegionStats
}

// NewRegion builds a region of the given kind and byte size.
func NewRegion(kind RegionKind, sizeBytes int) (*Region, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadRegionKind, int(kind))
	}
	if sizeBytes <= 0 || sizeBytes%memtech.WordBytes != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadRegionSize, sizeBytes)
	}
	bank, err := memtech.EstimateBank(kind.Technology(), kind.Protection(), sizeBytes)
	if err != nil {
		return nil, err
	}
	codec, err := kind.newCodec()
	if err != nil {
		return nil, err
	}
	n := sizeBytes / memtech.WordBytes
	r := &Region{
		kind:   kind,
		bank:   bank,
		codec:  codec,
		words:  make([]ecc.Bits, n),
		golden: make([]uint32, n),
		writes: make([]uint64, n),
	}
	// Power-on state: every word holds an encoded zero so decodes are
	// consistent from the start.
	zero := codec.Encode(ecc.BitsFromUint64(0))
	for i := range r.words {
		r.words[i] = zero
	}
	return r, nil
}

// Kind returns the region's protection kind.
func (r *Region) Kind() RegionKind { return r.kind }

// Bank returns the region's technology parameters.
func (r *Region) Bank() memtech.Bank { return r.bank }

// SizeBytes returns the region capacity.
func (r *Region) SizeBytes() int { return len(r.words) * memtech.WordBytes }

// Words returns the region capacity in 32-bit words.
func (r *Region) Words() int { return len(r.words) }

// Stats returns a copy of the region counters.
func (r *Region) Stats() RegionStats { return r.stats }

// WriteCount returns the accumulated writes to the word at wordIdx.
func (r *Region) WriteCount(wordIdx int) uint64 {
	if wordIdx < 0 || wordIdx >= len(r.writes) {
		return 0
	}
	return r.writes[wordIdx]
}

// MaxWriteCount returns the hottest word's write count.
func (r *Region) MaxWriteCount() uint64 {
	var m uint64
	for _, w := range r.writes {
		if w > m {
			m = w
		}
	}
	return m
}

// Read decodes n words starting at wordIdx, charging latency and energy,
// and returns the payloads. Observed error events (corrections,
// detections) are counted in the region stats.
func (r *Region) Read(wordIdx, n int) ([]uint32, memtech.Cycles, error) {
	if wordIdx < 0 || n < 0 || wordIdx+n > len(r.words) {
		return nil, 0, fmt.Errorf("%w: read [%d,+%d) of %d", ErrOutOfRange, wordIdx, n, len(r.words))
	}
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		data, status := r.codec.Decode(r.words[wordIdx+i])
		switch status {
		case ecc.Corrected:
			r.stats.CorrectedErrors++
			// Correction repairs the stored word too (scrub-on-read).
			r.words[wordIdx+i] = r.codec.Encode(data)
		case ecc.Detected:
			r.stats.DetectedErrors++
		}
		out[i] = uint32(data.Uint64())
		if status != ecc.Detected && out[i] != r.golden[wordIdx+i] {
			r.stats.SilentReads++
		}
	}
	r.stats.ReadAccesses++
	r.stats.WordsRead += uint64(n)
	e := r.bank.AccessEnergy(n*memtech.WordBytes, false)
	r.stats.Energy += e
	return out, r.bank.AccessLatency(n*memtech.WordBytes, false), nil
}

// Write encodes values into consecutive words starting at wordIdx,
// charging latency and energy and bumping the per-word write counters.
func (r *Region) Write(wordIdx int, values []uint32) (memtech.Cycles, error) {
	n := len(values)
	if wordIdx < 0 || wordIdx+n > len(r.words) {
		return 0, fmt.Errorf("%w: write [%d,+%d) of %d", ErrOutOfRange, wordIdx, n, len(r.words))
	}
	for i, v := range values {
		r.words[wordIdx+i] = r.codec.Encode(ecc.BitsFromUint64(uint64(v)))
		r.golden[wordIdx+i] = v
		r.writes[wordIdx+i]++
	}
	r.stats.WriteAccesses++
	r.stats.WordsWritten += uint64(n)
	e := r.bank.AccessEnergy(n*memtech.WordBytes, true)
	r.stats.Energy += e
	return r.bank.AccessLatency(n*memtech.WordBytes, true), nil
}

// InjectStrike flips a cluster of `multiplicity` adjacent bits in the
// stored codeword at wordIdx. STT-RAM regions are immune: the strike is
// absorbed and the word is unchanged. It returns true when bits actually
// flipped.
func (r *Region) InjectStrike(rng *rand.Rand, wordIdx, multiplicity int) (bool, error) {
	if wordIdx < 0 || wordIdx >= len(r.words) {
		return false, fmt.Errorf("%w: word %d of %d", ErrOutOfRange, wordIdx, len(r.words))
	}
	if r.kind.Immune() {
		return false, nil
	}
	r.words[wordIdx] = faults.InjectCluster(rng, r.words[wordIdx], r.codec.CodeBits(), multiplicity)
	return true, nil
}

// Scrub decodes every word and rewrites the ones with correctable
// errors, clearing accumulated single-bit upsets before a second strike
// can turn them into uncorrectable ones. It charges a full-region read
// plus one write per repaired word and returns the repair/uncorrectable
// counts. Scrubbing is an extension beyond the paper (its Section VI
// future-work direction of strengthening the SRAM regions); see
// experiments.AblationScrubbing for the quantified effect.
func (r *Region) Scrub() (repaired, uncorrectable int, cycles memtech.Cycles) {
	cycles = r.bank.AccessLatency(len(r.words)*memtech.WordBytes, false)
	r.stats.ReadAccesses++
	r.stats.WordsRead += uint64(len(r.words))
	r.stats.Energy += r.bank.AccessEnergy(len(r.words)*memtech.WordBytes, false)
	for i, w := range r.words {
		data, status := r.codec.Decode(w)
		switch status {
		case ecc.Corrected:
			r.words[i] = r.codec.Encode(data)
			r.writes[i]++
			repaired++
			r.stats.CorrectedErrors++
			cycles += r.bank.AccessLatency(memtech.WordBytes, true)
			r.stats.Energy += r.bank.AccessEnergy(memtech.WordBytes, true)
			r.stats.WordsWritten++
		case ecc.Detected:
			uncorrectable++
			r.stats.DetectedErrors++
		}
	}
	return repaired, uncorrectable, cycles
}

// Audit decodes every word and classifies it against the last written
// payload, without charging energy or disturbing the stats: the
// fault-injection campaign's ground-truth check.
func (r *Region) Audit() faults.Tally {
	var t faults.Tally
	for i, w := range r.words {
		data, status := r.codec.Decode(w)
		intact := uint32(data.Uint64()) == r.golden[i]
		switch status {
		case ecc.Corrected:
			if intact {
				t.Add(faults.DRE)
			} else {
				t.Add(faults.SDC)
			}
		case ecc.Detected:
			t.Add(faults.DUE)
		default:
			if intact {
				t.Add(faults.Benign)
			} else {
				t.Add(faults.SDC)
			}
		}
	}
	return t
}

// Package spm models the ScratchPad Memory hardware of FTSPM: protection
// regions with real encoded storage (through the ecc codecs), the hybrid
// SPM assembled from them (Fig. 1), and the SPM controller that performs
// the on-line phase — mapping blocks in and out of regions with DMA
// transfers against the off-chip memory.
package spm

import (
	"errors"
	"fmt"
	"math/rand"

	"ftspm/internal/ecc"
	"ftspm/internal/faults"
	"ftspm/internal/memtech"
)

// RegionKind identifies one of the protection levels of the proposed
// structure (Table IV legend).
type RegionKind int

// Region kinds.
const (
	// RegionSTT is STT-RAM: immune to particle strikes, slow and
	// expensive writes, limited write endurance.
	RegionSTT RegionKind = iota + 1
	// RegionECC is SEC-DED-protected SRAM: corrects 1-bit, detects
	// 2-bit upsets, 2-cycle accesses.
	RegionECC
	// RegionParity is parity-protected SRAM: detects 1-bit upsets,
	// 1-cycle accesses.
	RegionParity
	// RegionPlain is unprotected SRAM (used by the cache model and as a
	// reference point; no Table IV SPM uses it).
	RegionPlain
	// RegionDMR is duplicated SRAM (dual modular redundancy) — the
	// related-work duplication scheme [3] implemented as a comparison
	// structure: every word stored twice, reads compare the copies.
	RegionDMR
)

// String implements fmt.Stringer.
func (k RegionKind) String() string {
	switch k {
	case RegionSTT:
		return "STT-RAM"
	case RegionECC:
		return "SRAM(ECC)"
	case RegionParity:
		return "SRAM(parity)"
	case RegionPlain:
		return "SRAM"
	case RegionDMR:
		return "SRAM(DMR)"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Valid reports whether k is a known kind.
func (k RegionKind) Valid() bool {
	switch k {
	case RegionSTT, RegionECC, RegionParity, RegionPlain, RegionDMR:
		return true
	default:
		return false
	}
}

// Technology returns the cell technology of the kind.
func (k RegionKind) Technology() memtech.Technology {
	if k == RegionSTT {
		return memtech.STTRAM
	}
	return memtech.SRAM
}

// Protection returns the memtech protection level of the kind.
func (k RegionKind) Protection() memtech.Protection {
	switch k {
	case RegionECC:
		return memtech.SECDED
	case RegionParity:
		return memtech.Parity
	case RegionDMR:
		return memtech.DMR
	default:
		return memtech.Unprotected
	}
}

// Immune reports whether cells of this kind ignore particle strikes
// (STT-RAM per [9]).
func (k RegionKind) Immune() bool { return k == RegionSTT }

// VulnerabilityWeight returns the per-strike probability that an upset in
// this region escapes correction — the SDC+DUE probability the paper's
// equations (1)-(7) assign to the region:
//
//	STT-RAM      → 0            (immune)
//	SEC-DED SRAM → P(2) + P(≥3) (1-bit upsets are corrected)
//	parity SRAM  → P(1) + P(≥2) = 1 (nothing is correctable)
//	plain SRAM   → 1            (everything is silent corruption)
func (k RegionKind) VulnerabilityWeight(d faults.MBUDistribution) float64 {
	switch k {
	case RegionSTT:
		return 0
	case RegionECC:
		return d.PAtLeast(2)
	default:
		// Parity and plain SRAM: every upset escapes or is merely
		// detected; DMR detects nearly everything but recovers nothing,
		// so its DUE mass still counts toward eq. (1).
		return d.PAtLeast(1)
	}
}

func (k RegionKind) newCodec() (ecc.Codec, error) {
	switch k {
	case RegionECC:
		return ecc.NewHamming(32)
	case RegionParity:
		return ecc.NewParity(32)
	case RegionSTT, RegionPlain:
		return ecc.NewRaw(32)
	case RegionDMR:
		return ecc.NewDMR(32)
	default:
		return nil, fmt.Errorf("spm: no codec for %v", k)
	}
}

// RegionStats counts traffic and observed error events in one region.
type RegionStats struct {
	ReadAccesses, WriteAccesses uint64
	WordsRead, WordsWritten     uint64
	Energy                      memtech.Picojoules
	CorrectedErrors             uint64
	DetectedErrors              uint64
	// SilentReads counts reads that returned wrong data without any
	// error signal — consumed silent corruption. The hardware cannot
	// observe this; the simulator's golden copy can, which is what makes
	// empirical AVF validation possible (experiments.ValidateAVF).
	SilentReads uint64
}

// Errors returned by region and SPM operations.
var (
	ErrBadRegionSize = errors.New("spm: region size must be a positive multiple of the word size")
	ErrBadRegionKind = errors.New("spm: unknown region kind")
	ErrOutOfRange    = errors.New("spm: access outside region")
)

// Region is one contiguous protection region with encoded backing store.
type Region struct {
	kind   RegionKind
	bank   memtech.Bank
	codec  ecc.Codec
	words  []ecc.Bits // encoded codewords, one per 32-bit data word
	golden []uint32   // last written payloads, for audit classification
	writes []uint64   // per-word write counters (endurance analysis)
	stats  RegionStats
	// wear, when non-nil, makes writes stochastically unreliable
	// (STT-RAM write failures and wear-out; see WearConfig).
	wear *wearModel
	// stuckMask/stuckVal track permanently-failed cells per word (nil
	// until the first cell sticks). Bits under the mask are frozen at
	// the corresponding val bits on every store.
	stuckMask []ecc.Bits
	stuckVal  []ecc.Bits
	// retired marks words the controller has removed from service
	// after recurring faults (nil until the first retirement). Retired
	// words are skipped by scrub and audit: they hold dead cells, not
	// live data.
	retired []bool
	// readBuf is the reusable payload buffer handed out by ReadChecked:
	// it grows to the largest burst ever read and is then recycled, so
	// the steady-state read path allocates nothing.
	readBuf []uint32
}

// wearModel is the per-region instantiation of a WearConfig with its
// own deterministic random stream.
type wearModel struct {
	cfg WearConfig
	rng *rand.Rand
	// scale multiplies the transient write-failure probability; the
	// storm thermal ramp (faults.StormProcess.WearScale) drives it
	// between 1 and the configured ThermalFactor.
	scale float64
}

// writeFailProb returns the thermally scaled transient failure
// probability, clamped to 1.
func (m *wearModel) writeFailProb() float64 {
	p := m.cfg.WriteFailProb * m.scale
	if p > 1 {
		p = 1
	}
	return p
}

// NewRegion builds a region of the given kind and byte size.
func NewRegion(kind RegionKind, sizeBytes int) (*Region, error) {
	if !kind.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadRegionKind, int(kind))
	}
	if sizeBytes <= 0 || sizeBytes%memtech.WordBytes != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadRegionSize, sizeBytes)
	}
	bank, err := memtech.EstimateBank(kind.Technology(), kind.Protection(), sizeBytes)
	if err != nil {
		return nil, err
	}
	codec, err := kind.newCodec()
	if err != nil {
		return nil, err
	}
	n := sizeBytes / memtech.WordBytes
	r := &Region{
		kind:   kind,
		bank:   bank,
		codec:  codec,
		words:  make([]ecc.Bits, n),
		golden: make([]uint32, n),
		writes: make([]uint64, n),
	}
	// Power-on state: every word holds an encoded zero so decodes are
	// consistent from the start.
	zero := codec.Encode(ecc.BitsFromUint64(0))
	for i := range r.words {
		r.words[i] = zero
	}
	return r, nil
}

// Kind returns the region's protection kind.
func (r *Region) Kind() RegionKind { return r.kind }

// Codec returns the region's live error-coding codec, shared with the
// packed soak engine so its lane-parallel classification and the stored
// words stay codeword-compatible by construction.
func (r *Region) Codec() ecc.Codec { return r.codec }

// Bank returns the region's technology parameters.
func (r *Region) Bank() memtech.Bank { return r.bank }

// SizeBytes returns the region capacity.
func (r *Region) SizeBytes() int { return len(r.words) * memtech.WordBytes }

// Words returns the region capacity in 32-bit words.
func (r *Region) Words() int { return len(r.words) }

// Stats returns a copy of the region counters.
func (r *Region) Stats() RegionStats { return r.stats }

// WriteCount returns the accumulated writes to the word at wordIdx.
func (r *Region) WriteCount(wordIdx int) uint64 {
	if wordIdx < 0 || wordIdx >= len(r.writes) {
		return 0
	}
	return r.writes[wordIdx]
}

// MaxWriteCount returns the hottest word's write count.
func (r *Region) MaxWriteCount() uint64 {
	var m uint64
	for _, w := range r.writes {
		if w > m {
			m = w
		}
	}
	return m
}

// ReadOutcome reports the detection events of one checked read: what
// the protection circuit signalled to the controller, per word.
type ReadOutcome struct {
	// Corrected counts words whose single-bit errors were repaired
	// in-line (DREs).
	Corrected int
	// Detected lists the absolute word indices with uncorrectable
	// detected errors (DUEs) — the controller's recovery triggers.
	Detected []int
}

// Read decodes n words starting at wordIdx, charging latency and energy,
// and returns the payloads. Observed error events (corrections,
// detections) are counted in the region stats. The returned slice is a
// reusable scratch buffer owned by the region: it is valid until the
// next Read/ReadChecked on the same region, so callers that need the
// data past that point must copy it.
func (r *Region) Read(wordIdx, n int) ([]uint32, memtech.Cycles, error) {
	out, cycles, _, err := r.ReadChecked(wordIdx, n)
	return out, cycles, err
}

// ReadChecked is Read surfacing the per-word detection outcomes, so the
// controller can trigger recovery instead of silently carrying on. The
// returned payload slice follows the Read scratch-buffer contract.
func (r *Region) ReadChecked(wordIdx, n int) ([]uint32, memtech.Cycles, ReadOutcome, error) {
	var oc ReadOutcome
	if wordIdx < 0 || n < 0 || wordIdx+n > len(r.words) {
		return nil, 0, oc, fmt.Errorf("%w: read [%d,+%d) of %d", ErrOutOfRange, wordIdx, n, len(r.words))
	}
	if cap(r.readBuf) < n {
		r.readBuf = make([]uint32, n)
	}
	out := r.readBuf[:n]
	for i := 0; i < n; i++ {
		w := wordIdx + i
		data, status := r.codec.Decode(r.words[w])
		switch status {
		case ecc.Corrected:
			r.stats.CorrectedErrors++
			oc.Corrected++
			// Correction repairs the stored word too (scrub-on-read);
			// stuck cells stay stuck.
			r.store(w, r.codec.Encode(data))
		case ecc.Detected:
			r.stats.DetectedErrors++
			oc.Detected = append(oc.Detected, w)
		}
		out[i] = uint32(data.Uint64())
		if status != ecc.Detected && out[i] != r.golden[w] {
			r.stats.SilentReads++
		}
	}
	r.stats.ReadAccesses++
	r.stats.WordsRead += uint64(n)
	e := r.bank.AccessEnergy(n*memtech.WordBytes, false)
	r.stats.Energy += e
	return out, r.bank.AccessLatency(n*memtech.WordBytes, false), oc, nil
}

// WriteOutcome reports the write-verify events of one checked write.
type WriteOutcome struct {
	// Retries counts write attempts beyond the first across the
	// written words (transient STT-RAM switch failures caught by
	// write-verify; their latency and energy are already charged).
	Retries int
	// Failed lists the absolute word indices whose stored codeword
	// still differs from the intended one after all retries —
	// permanent stuck cells or an exhausted retry budget. These are
	// the graceful-degradation triggers.
	Failed []int
}

// Write encodes values into consecutive words starting at wordIdx,
// charging latency and energy and bumping the per-word write counters.
func (r *Region) Write(wordIdx int, values []uint32) (memtech.Cycles, error) {
	cycles, _, err := r.WriteChecked(wordIdx, values)
	return cycles, err
}

// WriteChecked is Write surfacing write-verify outcomes. Under a wear
// model (EnableWear) each word write can fail transiently — the verify
// read catches it and the write retries, charging one extra write per
// retry — and can permanently stick a cell at its current value.
func (r *Region) WriteChecked(wordIdx int, values []uint32) (memtech.Cycles, WriteOutcome, error) {
	var oc WriteOutcome
	n := len(values)
	if wordIdx < 0 || wordIdx+n > len(r.words) {
		return 0, oc, fmt.Errorf("%w: write [%d,+%d) of %d", ErrOutOfRange, wordIdx, n, len(r.words))
	}
	for i, v := range values {
		w := wordIdx + i
		enc := r.codec.Encode(ecc.BitsFromUint64(uint64(v)))
		if r.wear != nil && r.wear.cfg.StuckAtProb > 0 &&
			r.wear.rng.Float64() < r.wear.cfg.StuckAtProb {
			// Wear-out: one cell of the word sticks at whatever it
			// holds right now.
			bit := r.wear.rng.Intn(r.codec.CodeBits())
			r.setStuck(w, bit, r.words[w].Get(bit))
		}
		stored := enc
		if r.wear != nil && r.wear.cfg.WriteFailProb > 0 {
			failProb := r.wear.writeFailProb()
			retries := 0
			for r.wear.rng.Float64() < failProb {
				if retries >= r.wear.cfg.MaxWriteRetries {
					// Retry budget exhausted: one cell is left
					// unswitched for this write.
					stored = stored.Flip(r.wear.rng.Intn(r.codec.CodeBits()))
					break
				}
				retries++
			}
			oc.Retries += retries
		}
		// Stuck cells override everything the write driver attempted.
		if r.stuckMask != nil {
			stored = faults.ApplyStuckAt(stored, r.stuckMask[w], r.stuckVal[w])
		}
		r.words[w] = stored
		r.golden[w] = v
		r.writes[w]++
		if stored != enc {
			oc.Failed = append(oc.Failed, w)
		}
	}
	r.stats.WriteAccesses++
	r.stats.WordsWritten += uint64(n)
	e := r.bank.AccessEnergy(n*memtech.WordBytes, true)
	cycles := r.bank.AccessLatency(n*memtech.WordBytes, true)
	if oc.Retries > 0 {
		// Each retry re-drives one word: one extra write latency and
		// one word's write energy.
		cycles += r.bank.WriteLatency * memtech.Cycles(oc.Retries)
		e += r.bank.AccessEnergy(memtech.WordBytes, true) * memtech.Picojoules(oc.Retries)
	}
	r.stats.Energy += e
	return cycles, oc, nil
}

// store writes an encoded codeword into the backing array, honouring
// any permanently-stuck cells. Every store must go through here once a
// word may hold stuck cells.
func (r *Region) store(w int, code ecc.Bits) {
	if r.stuckMask != nil {
		code = faults.ApplyStuckAt(code, r.stuckMask[w], r.stuckVal[w])
	}
	r.words[w] = code
}

// setStuck freezes one cell of the word at val, materializing the
// stuck-cell arrays on first use.
func (r *Region) setStuck(w, bit int, val bool) {
	if r.stuckMask == nil {
		r.stuckMask = make([]ecc.Bits, len(r.words))
		r.stuckVal = make([]ecc.Bits, len(r.words))
	}
	r.stuckMask[w] = r.stuckMask[w].Set(bit, true)
	r.stuckVal[w] = r.stuckVal[w].Set(bit, val)
	r.words[w] = faults.ApplyStuckAt(r.words[w], r.stuckMask[w], r.stuckVal[w])
}

// EnableWear attaches a write-unreliability model to the region with a
// deterministic random stream derived from seed. Intended for STT-RAM
// regions (SPM.EnableWear applies it per technology).
func (r *Region) EnableWear(cfg WearConfig, seed int64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.wear = &wearModel{cfg: cfg, rng: rand.New(rand.NewSource(seed)), scale: 1}
	return nil
}

// SetWearScale sets the thermal multiplier on the wear model's
// transient write-failure probability (no-op without a wear model).
// The storm process drives it between 1 and ThermalFactor.
func (r *Region) SetWearScale(scale float64) {
	if r.wear != nil && scale >= 0 {
		r.wear.scale = scale
	}
}

// ApplyStrikeDelta XORs a precomputed strike cluster into the stored
// codeword — the apply half of faults.PlannedStrike / StormEvent,
// where bit i of delta flips code bit i. Immune regions absorb the
// event; a zero delta is a no-op.
func (r *Region) ApplyStrikeDelta(wordIdx int, delta uint64) error {
	if wordIdx < 0 || wordIdx >= len(r.words) {
		return fmt.Errorf("%w: word %d of %d", ErrOutOfRange, wordIdx, len(r.words))
	}
	if delta == 0 || r.kind.Immune() {
		return nil
	}
	r.words[wordIdx] = r.words[wordIdx].Xor(ecc.BitsFromUint64(delta))
	return nil
}

// InjectStuckAt permanently sticks one cell of the word at val — the
// deterministic fault-seeding hook for degradation tests and soak
// campaigns (the probabilistic path is WearConfig.StuckAtProb).
func (r *Region) InjectStuckAt(wordIdx, bit int, val bool) error {
	if wordIdx < 0 || wordIdx >= len(r.words) {
		return fmt.Errorf("%w: word %d of %d", ErrOutOfRange, wordIdx, len(r.words))
	}
	if bit < 0 || bit >= r.codec.CodeBits() {
		return fmt.Errorf("%w: bit %d of %d", ErrOutOfRange, bit, r.codec.CodeBits())
	}
	r.setStuck(wordIdx, bit, val)
	return nil
}

// WordHasStuck reports whether the word holds at least one
// permanently-stuck cell.
func (r *Region) WordHasStuck(wordIdx int) bool {
	if r.stuckMask == nil || wordIdx < 0 || wordIdx >= len(r.words) {
		return false
	}
	return !r.stuckMask[wordIdx].IsZero()
}

// StuckWordCount returns the number of words holding stuck cells.
func (r *Region) StuckWordCount() int {
	n := 0
	for i := range r.stuckMask {
		if !r.stuckMask[i].IsZero() {
			n++
		}
	}
	return n
}

// RetireWord removes a word from service: scrub and audit skip it from
// now on. The controller pairs this with withholding the word from its
// free lists, so nothing is ever placed there again.
func (r *Region) RetireWord(wordIdx int) error {
	if wordIdx < 0 || wordIdx >= len(r.words) {
		return fmt.Errorf("%w: word %d of %d", ErrOutOfRange, wordIdx, len(r.words))
	}
	if r.retired == nil {
		r.retired = make([]bool, len(r.words))
	}
	r.retired[wordIdx] = true
	return nil
}

// IsRetired reports whether the word has been removed from service.
func (r *Region) IsRetired(wordIdx int) bool {
	return r.retired != nil && wordIdx >= 0 && wordIdx < len(r.words) && r.retired[wordIdx]
}

// RetiredWordCount returns the number of retired words.
func (r *Region) RetiredWordCount() int {
	n := 0
	for _, ret := range r.retired {
		if ret {
			n++
		}
	}
	return n
}

// Golden returns the intended payloads of n words starting at wordIdx:
// what the word would hold absent faults. A real controller recovers
// these from its write buffer, the off-chip copy, or the ECC machinery;
// the simulator's golden array stands in for all three. Used by the
// graceful-degradation migration path, which must move *correct* data
// out of a failing region.
func (r *Region) Golden(wordIdx, n int) ([]uint32, error) {
	if wordIdx < 0 || n < 0 || wordIdx+n > len(r.words) {
		return nil, fmt.Errorf("%w: golden [%d,+%d) of %d", ErrOutOfRange, wordIdx, n, len(r.words))
	}
	out := make([]uint32, n)
	copy(out, r.golden[wordIdx:wordIdx+n])
	return out, nil
}

// DrainWords reads the intended payloads of n words starting at wordIdx
// for migration out of the region, charging a full read but bypassing
// the decoder: the controller already knows the interval is faulty (that
// is why it is migrating), so re-classifying the same words would
// double-count error events. Returns the golden payloads and the read
// latency.
func (r *Region) DrainWords(wordIdx, n int) ([]uint32, memtech.Cycles, error) {
	out, err := r.Golden(wordIdx, n)
	if err != nil {
		return nil, 0, err
	}
	r.stats.ReadAccesses++
	r.stats.WordsRead += uint64(n)
	r.stats.Energy += r.bank.AccessEnergy(n*memtech.WordBytes, false)
	return out, r.bank.AccessLatency(n*memtech.WordBytes, false), nil
}

// RestoreWord rewrites one word from its golden copy — the simulator's
// stand-in for a checkpoint restore — charging one word write. Stuck
// cells stay stuck, so restoring a word with permanent faults may still
// leave it corrupt.
func (r *Region) RestoreWord(wordIdx int) (memtech.Cycles, error) {
	if wordIdx < 0 || wordIdx >= len(r.words) {
		return 0, fmt.Errorf("%w: word %d of %d", ErrOutOfRange, wordIdx, len(r.words))
	}
	r.store(wordIdx, r.codec.Encode(ecc.BitsFromUint64(uint64(r.golden[wordIdx]))))
	r.writes[wordIdx]++
	r.stats.WriteAccesses++
	r.stats.WordsWritten++
	r.stats.Energy += r.bank.AccessEnergy(memtech.WordBytes, true)
	return r.bank.AccessLatency(memtech.WordBytes, true), nil
}

// InjectStrike flips a cluster of `multiplicity` adjacent bits in the
// stored codeword at wordIdx. STT-RAM regions are immune: the strike is
// absorbed and the word is unchanged. It returns true when bits actually
// flipped.
func (r *Region) InjectStrike(rng *rand.Rand, wordIdx, multiplicity int) (bool, error) {
	if wordIdx < 0 || wordIdx >= len(r.words) {
		return false, fmt.Errorf("%w: word %d of %d", ErrOutOfRange, wordIdx, len(r.words))
	}
	if r.kind.Immune() {
		return false, nil
	}
	r.words[wordIdx] = faults.InjectCluster(rng, r.words[wordIdx], r.codec.CodeBits(), multiplicity)
	return true, nil
}

// Scrub decodes every word and rewrites the ones with correctable
// errors, clearing accumulated single-bit upsets before a second strike
// can turn them into uncorrectable ones. It charges a full-region read
// plus one write per repaired word and returns the repair/uncorrectable
// counts. Scrubbing is an extension beyond the paper (its Section VI
// future-work direction of strengthening the SRAM regions); see
// experiments.AblationScrubbing for the quantified effect.
func (r *Region) Scrub() (repaired, uncorrectable int, cycles memtech.Cycles) {
	rep, detected, cycles := r.ScrubWords()
	return rep, len(detected), cycles
}

// ScrubWords is Scrub surfacing the absolute word indices of the
// uncorrectable words it found, so the controller can recover them
// (DRAM re-fetch for clean blocks, checkpoint restore otherwise).
// Retired words are skipped: their cells are out of service.
func (r *Region) ScrubWords() (repaired int, detected []int, cycles memtech.Cycles) {
	cycles = r.bank.AccessLatency(len(r.words)*memtech.WordBytes, false)
	r.stats.ReadAccesses++
	r.stats.WordsRead += uint64(len(r.words))
	r.stats.Energy += r.bank.AccessEnergy(len(r.words)*memtech.WordBytes, false)
	for i, w := range r.words {
		if r.IsRetired(i) {
			continue
		}
		data, status := r.codec.Decode(w)
		switch status {
		case ecc.Corrected:
			r.store(i, r.codec.Encode(data))
			r.writes[i]++
			repaired++
			r.stats.CorrectedErrors++
			cycles += r.bank.AccessLatency(memtech.WordBytes, true)
			r.stats.Energy += r.bank.AccessEnergy(memtech.WordBytes, true)
			r.stats.WordsWritten++
		case ecc.Detected:
			detected = append(detected, i)
			r.stats.DetectedErrors++
		}
	}
	return repaired, detected, cycles
}

// Audit decodes every word and classifies it against the last written
// payload, without charging energy or disturbing the stats: the
// fault-injection campaign's ground-truth check.
func (r *Region) Audit() faults.Tally {
	var t faults.Tally
	for i, w := range r.words {
		if r.IsRetired(i) {
			// Retired words hold dead cells, not live data; counting
			// them would charge degradation twice (it already shows up
			// as RetiredWords in the recovery stats).
			continue
		}
		data, status := r.codec.Decode(w)
		intact := uint32(data.Uint64()) == r.golden[i]
		switch status {
		case ecc.Corrected:
			if intact {
				t.Add(faults.DRE)
			} else {
				t.Add(faults.SDC)
			}
		case ecc.Detected:
			t.Add(faults.DUE)
		default:
			if intact {
				t.Add(faults.Benign)
			} else {
				t.Add(faults.SDC)
			}
		}
	}
	return t
}

package spm

import (
	"errors"
	"fmt"
	"math/rand"

	"ftspm/internal/faults"
	"ftspm/internal/memtech"
)

// RegionConfig sizes one region of an SPM.
type RegionConfig struct {
	Kind      RegionKind
	SizeBytes int
}

// SPM is one scratchpad memory: an ordered set of protection regions.
// The FTSPM data SPM is {STT 12K, ECC 2K, parity 2K}; the baselines and
// the instruction SPM are single-region instances (Table IV).
type SPM struct {
	regions []*Region
	// extraLeakage covers structure-level controller/peripheral leakage
	// beyond the per-bank values (the hybrid mapping controller of
	// Fig. 1).
	extraLeakage memtech.Milliwatts
}

// ErrNoRegions rejects an empty configuration.
var ErrNoRegions = errors.New("spm: at least one region required")

// New builds an SPM from region configurations. extraLeakage adds
// structure-level controller leakage (use
// memtech.HybridControllerLeakage for the FTSPM hybrid, 0 for
// single-region structures).
func New(extraLeakage memtech.Milliwatts, configs ...RegionConfig) (*SPM, error) {
	if len(configs) == 0 {
		return nil, ErrNoRegions
	}
	s := &SPM{extraLeakage: extraLeakage}
	for _, cfg := range configs {
		r, err := NewRegion(cfg.Kind, cfg.SizeBytes)
		if err != nil {
			return nil, fmt.Errorf("spm: region %v: %w", cfg.Kind, err)
		}
		s.regions = append(s.regions, r)
	}
	return s, nil
}

// NumRegions returns the region count.
func (s *SPM) NumRegions() int { return len(s.regions) }

// Region returns the i-th region.
func (s *SPM) Region(i int) (*Region, error) {
	if i < 0 || i >= len(s.regions) {
		return nil, fmt.Errorf("%w: region %d of %d", ErrOutOfRange, i, len(s.regions))
	}
	return s.regions[i], nil
}

// RegionByKind returns the first region of the given kind.
func (s *SPM) RegionByKind(k RegionKind) (*Region, bool) {
	for _, r := range s.regions {
		if r.kind == k {
			return r, true
		}
	}
	return nil, false
}

// Regions returns the regions in configuration order. The slice is a
// copy; the *Region values are the live regions.
func (s *SPM) Regions() []*Region {
	out := make([]*Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// TotalBytes returns the summed capacity.
func (s *SPM) TotalBytes() int {
	total := 0
	for _, r := range s.regions {
		total += r.SizeBytes()
	}
	return total
}

// Leakage returns the structure's static power: per-bank leakage plus
// the structure-level controller overhead.
func (s *SPM) Leakage() memtech.Milliwatts {
	total := s.extraLeakage
	for _, r := range s.regions {
		total += r.bank.Leakage
	}
	return total
}

// DynamicEnergy sums the accumulated access energy over all regions.
func (s *SPM) DynamicEnergy() memtech.Picojoules {
	var total memtech.Picojoules
	for _, r := range s.regions {
		total += r.stats.Energy
	}
	return total
}

// EnableWear attaches the STT-RAM write-unreliability model to every
// STT-RAM region of the SPM (SRAM cells do not wear). Each region gets
// its own deterministic random stream derived from cfg.Seed and the
// region index, so multi-region structures stay reproducible.
func (s *SPM) EnableWear(cfg WearConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for i, r := range s.regions {
		if r.Kind().Technology() != memtech.STTRAM {
			continue
		}
		if err := r.EnableWear(cfg, cfg.Seed+int64(i)*0x9e3779b9); err != nil {
			return err
		}
	}
	return nil
}

// SetWearScale forwards the storm thermal multiplier to every region
// carrying a wear model (regions without one ignore it).
func (s *SPM) SetWearScale(scale float64) {
	for _, r := range s.regions {
		r.SetWearScale(scale)
	}
}

// StoredBits returns the total stored code bits over all regions — the
// particle-catching surface used to weight strike targeting.
func (s *SPM) StoredBits() int {
	total := 0
	for _, r := range s.regions {
		total += r.Words() * r.codec.CodeBits()
	}
	return total
}

// InjectStrike lands one particle strike on the SPM surface: the struck
// region is chosen in proportion to its stored code bits (larger banks
// catch more particles, and a parity word's 33 stored bits weigh less
// than a SEC-DED word's 39), then the strike corrupts a cluster of
// adjacent bits confined to the chosen word's codeword — word
// granularity is preserved for every protection level. Strikes on
// immune STT-RAM regions are absorbed. It reports whether any bit
// flipped.
func (s *SPM) InjectStrike(rng *rand.Rand, dist faults.MBUDistribution) (bool, error) {
	totalBits := s.StoredBits()
	if totalBits == 0 {
		return false, ErrNoRegions
	}
	pick := rng.Intn(totalBits)
	for _, r := range s.regions {
		bits := r.Words() * r.codec.CodeBits()
		if pick < bits {
			word := pick / r.codec.CodeBits()
			return r.InjectStrike(rng, word, dist.Sample(rng))
		}
		pick -= bits
	}
	return false, nil // unreachable
}

// Audit classifies every stored word of every region against its golden
// payload.
func (s *SPM) Audit() faults.Tally {
	var t faults.Tally
	for _, r := range s.regions {
		rt := r.Audit()
		t.Benign += rt.Benign
		t.DRE += rt.DRE
		t.DUE += rt.DUE
		t.SDC += rt.SDC
	}
	return t
}

package spm

import (
	"errors"
	"math/rand"
	"testing"

	"ftspm/internal/faults"
	"ftspm/internal/memtech"
)

func TestRegionKindProperties(t *testing.T) {
	tests := []struct {
		kind   RegionKind
		tech   memtech.Technology
		prot   memtech.Protection
		immune bool
		weight float64
	}{
		{RegionSTT, memtech.STTRAM, memtech.Unprotected, true, 0},
		{RegionECC, memtech.SRAM, memtech.SECDED, false, 0.38},
		{RegionParity, memtech.SRAM, memtech.Parity, false, 1.0},
		{RegionPlain, memtech.SRAM, memtech.Unprotected, false, 1.0},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			if !tt.kind.Valid() {
				t.Error("kind invalid")
			}
			if tt.kind.Technology() != tt.tech || tt.kind.Protection() != tt.prot {
				t.Errorf("tech/prot = %v/%v", tt.kind.Technology(), tt.kind.Protection())
			}
			if tt.kind.Immune() != tt.immune {
				t.Errorf("Immune = %v", tt.kind.Immune())
			}
			got := tt.kind.VulnerabilityWeight(faults.Dist40nm)
			if diff := got - tt.weight; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("weight = %v, want %v", got, tt.weight)
			}
		})
	}
	if RegionKind(0).Valid() || RegionKind(9).Valid() {
		t.Error("invalid kinds accepted")
	}
	if RegionKind(9).String() != "RegionKind(9)" {
		t.Error("unknown kind stringer")
	}
}

func TestNewRegionErrors(t *testing.T) {
	if _, err := NewRegion(RegionKind(0), 1024); !errors.Is(err, ErrBadRegionKind) {
		t.Errorf("bad kind: %v", err)
	}
	if _, err := NewRegion(RegionECC, 0); !errors.Is(err, ErrBadRegionSize) {
		t.Errorf("zero size: %v", err)
	}
	if _, err := NewRegion(RegionECC, 13); !errors.Is(err, ErrBadRegionSize) {
		t.Errorf("unaligned size: %v", err)
	}
}

func TestRegionReadWriteRoundTrip(t *testing.T) {
	for _, kind := range []RegionKind{RegionSTT, RegionECC, RegionParity, RegionPlain} {
		r, err := NewRegion(kind, 1024)
		if err != nil {
			t.Fatal(err)
		}
		want := []uint32{0xdeadbeef, 0x12345678, 0}
		wc, err := r.Write(10, want)
		if err != nil {
			t.Fatal(err)
		}
		if wc == 0 {
			t.Errorf("%v: zero write latency", kind)
		}
		got, rc, err := r.Read(10, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rc == 0 {
			t.Errorf("%v: zero read latency", kind)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: word %d = %#x, want %#x", kind, i, got[i], want[i])
			}
		}
		st := r.Stats()
		if st.ReadAccesses != 1 || st.WriteAccesses != 1 || st.WordsRead != 3 || st.WordsWritten != 3 {
			t.Errorf("%v: stats %+v", kind, st)
		}
		if st.Energy <= 0 {
			t.Errorf("%v: no energy charged", kind)
		}
		if r.WriteCount(10) != 1 || r.WriteCount(9) != 0 {
			t.Errorf("%v: write counters wrong", kind)
		}
		if r.MaxWriteCount() != 1 {
			t.Errorf("%v: MaxWriteCount = %d", kind, r.MaxWriteCount())
		}
	}
}

func TestRegionSTTWriteLatencyTableIV(t *testing.T) {
	stt, err := NewRegion(RegionSTT, 1024)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := stt.Write(0, []uint32{1})
	if err != nil {
		t.Fatal(err)
	}
	if wc != 10 {
		t.Errorf("STT single-word write latency = %d, want 10 (Table IV)", wc)
	}
	_, rc, err := stt.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc != 1 {
		t.Errorf("STT read latency = %d, want 1", rc)
	}
}

func TestRegionBoundsChecks(t *testing.T) {
	r, err := NewRegion(RegionECC, 64) // 16 words
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Read(15, 2); !errors.Is(err, ErrOutOfRange) {
		t.Error("read past end accepted")
	}
	if _, _, err := r.Read(-1, 1); !errors.Is(err, ErrOutOfRange) {
		t.Error("negative read accepted")
	}
	if _, err := r.Write(16, []uint32{1}); !errors.Is(err, ErrOutOfRange) {
		t.Error("write past end accepted")
	}
	if _, err := r.InjectStrike(rand.New(rand.NewSource(1)), 99, 1); !errors.Is(err, ErrOutOfRange) {
		t.Error("strike past end accepted")
	}
}

func TestRegionECCCorrectsAndScrubs(t *testing.T) {
	r, err := NewRegion(RegionECC, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(3, []uint32{0xcafe}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	flipped, err := r.InjectStrike(rng, 3, 1)
	if err != nil || !flipped {
		t.Fatalf("strike: %v flipped=%v", err, flipped)
	}
	got, _, err := r.Read(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xcafe {
		t.Errorf("ECC failed to correct: %#x", got[0])
	}
	if r.Stats().CorrectedErrors != 1 {
		t.Errorf("CorrectedErrors = %d", r.Stats().CorrectedErrors)
	}
	// Scrub-on-read repaired the stored word: reading again is clean.
	if _, _, err := r.Read(3, 1); err != nil {
		t.Fatal(err)
	}
	if r.Stats().CorrectedErrors != 1 {
		t.Error("scrub-on-read did not repair the stored word")
	}
}

func TestRegionECCDetectsDoubles(t *testing.T) {
	r, err := NewRegion(RegionECC, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(0, []uint32{0xff}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := r.InjectStrike(rng, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Read(0, 1); err != nil {
		t.Fatal(err)
	}
	if r.Stats().DetectedErrors != 1 {
		t.Errorf("DetectedErrors = %d", r.Stats().DetectedErrors)
	}
}

func TestRegionSTTImmune(t *testing.T) {
	r, err := NewRegion(RegionSTT, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(5, []uint32{42}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	flipped, err := r.InjectStrike(rng, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flipped {
		t.Error("STT-RAM region flipped bits under strike")
	}
	got, _, err := r.Read(5, 1)
	if err != nil || got[0] != 42 {
		t.Errorf("STT content corrupted: %v %v", got, err)
	}
}

func TestRegionAudit(t *testing.T) {
	r, err := NewRegion(RegionParity, 64) // 16 words
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(0, []uint32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	clean := r.Audit()
	if clean.Benign != 16 || clean.SDC != 0 {
		t.Errorf("clean audit = %+v", clean)
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := r.InjectStrike(rng, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.InjectStrike(rng, 2, 2); err != nil {
		t.Fatal(err)
	}
	got := r.Audit()
	if got.DUE != 1 {
		t.Errorf("audit DUE = %d, want 1 (single flip detected by parity)", got.DUE)
	}
	if got.SDC != 1 {
		t.Errorf("audit SDC = %d, want 1 (double flip silent under parity)", got.SDC)
	}
	if got.Benign != 14 {
		t.Errorf("audit Benign = %d", got.Benign)
	}
}

func buildHybrid(t *testing.T) *SPM {
	t.Helper()
	s, err := New(memtech.HybridControllerLeakage,
		RegionConfig{Kind: RegionSTT, SizeBytes: 12 * 1024},
		RegionConfig{Kind: RegionECC, SizeBytes: 2 * 1024},
		RegionConfig{Kind: RegionParity, SizeBytes: 2 * 1024},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSPMGeometry(t *testing.T) {
	s := buildHybrid(t)
	if s.NumRegions() != 3 {
		t.Fatalf("NumRegions = %d", s.NumRegions())
	}
	if s.TotalBytes() != 16*1024 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
	if _, err := s.Region(3); !errors.Is(err, ErrOutOfRange) {
		t.Error("out-of-range region accepted")
	}
	if _, ok := s.RegionByKind(RegionECC); !ok {
		t.Error("RegionByKind(ECC) failed")
	}
	if _, ok := s.RegionByKind(RegionPlain); ok {
		t.Error("RegionByKind(Plain) found a phantom region")
	}
	if len(s.Regions()) != 3 {
		t.Error("Regions() wrong length")
	}
	// FTSPM data-SPM leakage: 12K STT (1.13) + 2K ECC (0.99) + 2K parity
	// (0.93) + hybrid controller (2.55) ≈ 5.6 mW; adding the 16K STT
	// I-SPM (1.5) reaches the paper's 7.1 mW total.
	leak := float64(s.Leakage())
	if leak < 5.3 || leak > 5.9 {
		t.Errorf("hybrid D-SPM leakage = %.2f mW, want ~5.6", leak)
	}
	if _, err := New(0); !errors.Is(err, ErrNoRegions) {
		t.Error("empty SPM accepted")
	}
	if _, err := New(0, RegionConfig{Kind: RegionECC, SizeBytes: -1}); err == nil {
		t.Error("bad region config accepted")
	}
}

func TestSPMInjectStrikeDistribution(t *testing.T) {
	// Strikes must land across regions in proportion to stored bits;
	// only SRAM-region strikes flip bits.
	s := buildHybrid(t)
	rng := rand.New(rand.NewSource(6))
	flips := 0
	const n = 5000
	for i := 0; i < n; i++ {
		flipped, err := s.InjectStrike(rng, faults.Dist40nm)
		if err != nil {
			t.Fatal(err)
		}
		if flipped {
			flips++
		}
	}
	// SRAM code bits: ECC 512w×39 + parity 512w×33 = 36864; STT bits:
	// 3072w×32 = 98304. SRAM share ≈ 27%.
	frac := float64(flips) / n
	if frac < 0.22 || frac > 0.33 {
		t.Errorf("SRAM strike fraction = %.3f, want ~0.27", frac)
	}
	tally := s.Audit()
	if tally.Total() != 4096 {
		t.Errorf("audit total = %d, want 4096 words", tally.Total())
	}
	if tally.DUE == 0 {
		t.Error("no detected upsets after 5000 strikes")
	}
	if got := s.DynamicEnergy(); got != 0 {
		t.Errorf("injection charged energy: %v", got)
	}
}

func TestRegionScrub(t *testing.T) {
	r, err := NewRegion(RegionECC, 256) // 64 words
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write(0, []uint32{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	// Word 0: single flip (repairable). Word 1: double flip
	// (uncorrectable). Word 2: clean.
	if _, err := r.InjectStrike(rng, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.InjectStrike(rng, 1, 2); err != nil {
		t.Fatal(err)
	}
	repaired, uncorrectable, cycles := r.Scrub()
	if repaired != 1 || uncorrectable != 1 {
		t.Errorf("Scrub = %d repaired / %d uncorrectable, want 1/1", repaired, uncorrectable)
	}
	if cycles == 0 {
		t.Error("scrub charged no cycles")
	}
	// After the scrub, the repaired word is clean; the double flip
	// remains detected.
	repaired2, uncorrectable2, _ := r.Scrub()
	if repaired2 != 0 || uncorrectable2 != 1 {
		t.Errorf("second Scrub = %d/%d, want 0/1", repaired2, uncorrectable2)
	}
	// The repair bumped the word's write counter.
	if r.WriteCount(0) != 2 {
		t.Errorf("repaired word write count = %d, want 2", r.WriteCount(0))
	}
}

func TestSTTRegionScrubIsNoOp(t *testing.T) {
	r, err := NewRegion(RegionSTT, 256)
	if err != nil {
		t.Fatal(err)
	}
	repaired, uncorrectable, _ := r.Scrub()
	if repaired != 0 || uncorrectable != 0 {
		t.Error("immune region scrub found errors")
	}
}

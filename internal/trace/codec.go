package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format, one event per line:
//
//	A <R|W> <C|D> <addr-hex> <size> <think>   memory access
//	C <frame-bytes>                           call marker
//	T                                         return marker
//	# ...                                     comment (ignored)
//
// The format is the package's record/replay interchange: a generated
// stream can be written once and replayed later without rebuilding the
// generator.

// ErrBadTraceLine is wrapped by Reader errors for malformed input.
var ErrBadTraceLine = errors.New("trace: malformed trace line")

// Writer serializes events to the text format.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one event. Errors are sticky and returned from Flush too.
func (t *Writer) Write(e Event) error {
	if t.err != nil {
		return t.err
	}
	switch e.Kind {
	case KindAccess:
		a := e.Access
		op := "R"
		if a.Op == Write {
			op = "W"
		}
		sp := "C"
		if a.Space == Data {
			sp = "D"
		}
		_, t.err = fmt.Fprintf(t.w, "A %s %s %x %d %d\n", op, sp, a.Addr, a.Size, a.Think)
	case KindCall:
		_, t.err = fmt.Fprintf(t.w, "C %d\n", e.StackBytes)
	case KindReturn:
		_, t.err = fmt.Fprintln(t.w, "T")
	default:
		t.err = fmt.Errorf("trace: unknown event kind %v", e.Kind)
	}
	return t.err
}

// Flush drains buffered output.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// WriteAll serializes a whole stream to w.
func WriteAll(w io.Writer, s Stream) error {
	tw := NewWriter(w)
	for {
		e, ok := s.Next()
		if !ok {
			return tw.Flush()
		}
		if err := tw.Write(e); err != nil {
			return err
		}
	}
}

// Reader parses the text format as a Stream.
type Reader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

var _ Stream = (*Reader)(nil)

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{sc: sc}
}

// Err returns the first parse or I/O error encountered, if any. A stream
// that ends because of an error reports ok=false from Next exactly like a
// clean EOF, so callers must check Err after draining.
func (r *Reader) Err() error { return r.err }

// Next implements Stream.
func (r *Reader) Next() (Event, bool) {
	if r.err != nil {
		return Event{}, false
	}
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			r.err = fmt.Errorf("line %d: %w", r.line, err)
			return Event{}, false
		}
		return e, true
	}
	r.err = r.sc.Err()
	return Event{}, false
}

func parseLine(line string) (Event, error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "A":
		if len(fields) != 6 {
			return Event{}, fmt.Errorf("%w: want 6 fields, got %d", ErrBadTraceLine, len(fields))
		}
		var a Access
		switch fields[1] {
		case "R":
			a.Op = Read
		case "W":
			a.Op = Write
		default:
			return Event{}, fmt.Errorf("%w: bad op %q", ErrBadTraceLine, fields[1])
		}
		switch fields[2] {
		case "C":
			a.Space = Code
		case "D":
			a.Space = Data
		default:
			return Event{}, fmt.Errorf("%w: bad space %q", ErrBadTraceLine, fields[2])
		}
		addr, err := strconv.ParseUint(fields[3], 16, 32)
		if err != nil {
			return Event{}, fmt.Errorf("%w: bad addr: %v", ErrBadTraceLine, err)
		}
		a.Addr = uint32(addr)
		if a.Size, err = strconv.Atoi(fields[4]); err != nil || a.Size < 1 {
			return Event{}, fmt.Errorf("%w: bad size %q", ErrBadTraceLine, fields[4])
		}
		if a.Think, err = strconv.Atoi(fields[5]); err != nil || a.Think < 0 {
			return Event{}, fmt.Errorf("%w: bad think %q", ErrBadTraceLine, fields[5])
		}
		return AccessEvent(a), nil
	case "C":
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("%w: want 2 fields, got %d", ErrBadTraceLine, len(fields))
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return Event{}, fmt.Errorf("%w: bad frame size %q", ErrBadTraceLine, fields[1])
		}
		return CallEvent(n), nil
	case "T":
		return ReturnEvent(), nil
	default:
		return Event{}, fmt.Errorf("%w: unknown record %q", ErrBadTraceLine, fields[0])
	}
}

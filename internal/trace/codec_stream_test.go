// External test: round-trips the text codec through the streaming
// generator path (workloads cannot be imported from the in-package
// tests without a cycle).
package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"ftspm/internal/trace"
	"ftspm/internal/workloads"
)

// TestCodecRoundTripsGeneratorStream records a streamed (never
// materialized) trace through the text codec and replays it, checking
// the reader yields the exact generator sequence — the record/replay
// guarantee of the streaming path.
func TestCodecRoundTripsGeneratorStream(t *testing.T) {
	w := workloads.CaseStudy()
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, w.TraceStream(0.02)); err != nil {
		t.Fatal(err)
	}
	r := trace.NewReader(&buf)
	replayed := trace.Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	want := trace.Collect(w.TraceStream(0.02), 0)
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(want))
	}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatal("codec round trip diverges from the generator stream")
	}
}

package trace

import (
	"reflect"
	"testing"
)

// TestReplaySharesBacking: Replay streams read in place and each owns
// its cursor, so any number of them can interleave over one slice.
func TestReplaySharesBacking(t *testing.T) {
	events := sampleEvents()
	a, b := Replay(events), Replay(events)
	var gotA, gotB []Event
	for { // interleave the two cursors
		ea, okA := a.Next()
		if okA {
			gotA = append(gotA, ea)
		}
		eb, okB := b.Next()
		if okB {
			gotB = append(gotB, eb)
		}
		if !okA && !okB {
			break
		}
	}
	if !reflect.DeepEqual(gotA, events) || !reflect.DeepEqual(gotB, events) {
		t.Fatal("interleaved replay streams diverged from the source")
	}
}

func TestReplayDoesNotCopy(t *testing.T) {
	events := sampleEvents()
	s := Replay(events)
	if s.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(events))
	}
	// NewSliceStream copies; Replay must not (that is its contract).
	events[0].StackBytes = 99
	e, _ := s.Next()
	if e.StackBytes != 99 {
		t.Fatal("Replay copied the slice; it must read in place")
	}
}

func TestCountingStream(t *testing.T) {
	events := sampleEvents()
	c := &CountingStream{S: Replay(events)}
	got := Collect(c, 0)
	if c.N != len(events) {
		t.Fatalf("counted %d events, want %d", c.N, len(events))
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatal("counting wrapper altered the sequence")
	}
	if _, ok := c.Next(); ok || c.N != len(events) {
		t.Fatal("exhausted stream must not keep counting")
	}
}

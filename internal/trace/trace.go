// Package trace defines the memory-access trace model that connects the
// workload generators to the profiler and the simulator. A trace is a
// deterministic stream of events: word-granularity memory accesses
// annotated with preceding compute ("think") cycles, plus call/return
// markers that let the profiler reconstruct the stack statistics of
// Table I. Traces can be streamed from a generator, materialized in a
// slice, or serialized to a line-oriented text format for record/replay.
package trace

import (
	"fmt"
)

// Op is the direction of a memory access.
type Op int

// Access directions.
const (
	Read Op = iota + 1
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Valid reports whether o is a known op.
func (o Op) Valid() bool { return o == Read || o == Write }

// Space distinguishes instruction fetches from data accesses; the paper's
// platform has separate instruction and data SPMs (Table IV).
type Space int

// Address spaces.
const (
	Code Space = iota + 1
	Data
)

// String implements fmt.Stringer.
func (s Space) String() string {
	switch s {
	case Code:
		return "code"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("Space(%d)", int(s))
	}
}

// Valid reports whether s is a known space.
func (s Space) Valid() bool { return s == Code || s == Data }

// Access is one word-granularity memory reference.
type Access struct {
	// Op is the direction.
	Op Op
	// Space selects the instruction or data side of the hierarchy.
	Space Space
	// Addr is the (virtual, off-chip image) byte address touched.
	Addr uint32
	// Size is the number of bytes touched, at least 1.
	Size int
	// Think is the number of pure-compute cycles the core spends before
	// issuing this access; it models the non-memory instructions between
	// references.
	Think int
}

// Kind discriminates trace events.
type Kind int

// Event kinds.
const (
	// KindAccess is a memory access.
	KindAccess Kind = iota + 1
	// KindCall marks a function call pushing StackBytes onto the stack.
	KindCall
	// KindReturn marks a function return popping the most recent frame.
	KindReturn
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAccess:
		return "access"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one element of a trace.
type Event struct {
	// Kind discriminates which fields are meaningful.
	Kind Kind
	// Access is valid when Kind == KindAccess.
	Access Access
	// StackBytes is valid when Kind == KindCall: the callee frame size.
	StackBytes int
}

// AccessEvent wraps an access as an event.
func AccessEvent(a Access) Event { return Event{Kind: KindAccess, Access: a} }

// CallEvent returns a call marker with the given frame size.
func CallEvent(frameBytes int) Event {
	return Event{Kind: KindCall, StackBytes: frameBytes}
}

// ReturnEvent returns a return marker.
func ReturnEvent() Event { return Event{Kind: KindReturn} }

// Stream produces trace events in order. Next returns ok=false when the
// trace is exhausted. Implementations must be deterministic for a given
// construction so a trace can be replayed by rebuilding the stream.
type Stream interface {
	Next() (Event, bool)
}

// SliceStream streams a materialized trace.
type SliceStream struct {
	events []Event
	pos    int
}

var _ Stream = (*SliceStream)(nil)

// NewSliceStream returns a stream over a copy of events (the slice is
// copied so later mutation by the caller cannot corrupt the stream).
func NewSliceStream(events []Event) *SliceStream {
	cp := make([]Event, len(events))
	copy(cp, events)
	return &SliceStream{events: cp}
}

// Replay returns a SliceStream that reads events in place, without
// copying. The caller promises the slice is never mutated afterwards;
// under that contract any number of Replay streams (including
// concurrent ones, each owning its own cursor) can share one backing
// array — the mechanism behind the shared-trace sweep engine and the
// workloads.TraceCache.
func Replay(events []Event) *SliceStream {
	return &SliceStream{events: events}
}

// Next implements Stream.
func (s *SliceStream) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of events in the stream.
func (s *SliceStream) Len() int { return len(s.events) }

// CountingStream wraps a Stream and counts the events it yields —
// the streaming substitute for SliceStream.Len when the trace is never
// materialized.
type CountingStream struct {
	// S is the wrapped stream.
	S Stream
	// N is the number of events yielded so far.
	N int
}

var _ Stream = (*CountingStream)(nil)

// Next implements Stream.
func (c *CountingStream) Next() (Event, bool) {
	e, ok := c.S.Next()
	if ok {
		c.N++
	}
	return e, ok
}

// Collect drains a stream into a slice, up to max events (max <= 0 means
// unbounded).
func Collect(s Stream, max int) []Event {
	var out []Event
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Stats summarizes a trace.
type Stats struct {
	// Events is the total event count, all kinds.
	Events int
	// Reads and Writes count accesses by direction.
	Reads, Writes int
	// CodeAccesses and DataAccesses count accesses by space.
	CodeAccesses, DataAccesses int
	// ThinkCycles is the total compute-cycle count.
	ThinkCycles int
	// Calls and Returns count stack markers.
	Calls, Returns int
	// MaxStackBytes is the high-water mark of the call-stack depth in
	// bytes.
	MaxStackBytes int
	// BytesRead and BytesWritten total the access sizes by direction.
	BytesRead, BytesWritten int
}

// Accesses returns the total number of memory accesses.
func (s Stats) Accesses() int { return s.Reads + s.Writes }

// observe folds one event into the counters (stack depth is tracked by
// Summarize, which owns the frame bookkeeping).
func (s *Stats) observe(e Event) {
	s.Events++
	switch e.Kind {
	case KindAccess:
		a := e.Access
		if a.Op == Read {
			s.Reads++
			s.BytesRead += a.Size
		} else {
			s.Writes++
			s.BytesWritten += a.Size
		}
		if a.Space == Code {
			s.CodeAccesses++
		} else {
			s.DataAccesses++
		}
		s.ThinkCycles += a.Think
	case KindCall:
		s.Calls++
	case KindReturn:
		s.Returns++
	}
}

// Summarize drains a stream and returns its stats. Unmatched returns are
// ignored (depth clamps at zero).
func Summarize(s Stream) Stats {
	var st Stats
	depth := 0
	var frames []int
	for {
		e, ok := s.Next()
		if !ok {
			return st
		}
		st.observe(e)
		switch e.Kind {
		case KindCall:
			frames = append(frames, e.StackBytes)
			depth += e.StackBytes
			if depth > st.MaxStackBytes {
				st.MaxStackBytes = depth
			}
		case KindReturn:
			if n := len(frames); n > 0 {
				depth -= frames[n-1]
				frames = frames[:n-1]
			}
		}
	}
}

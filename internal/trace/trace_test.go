package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleEvents() []Event {
	return []Event{
		CallEvent(64),
		AccessEvent(Access{Op: Read, Space: Code, Addr: 0x1000, Size: 4, Think: 2}),
		AccessEvent(Access{Op: Write, Space: Data, Addr: 0x2004, Size: 4, Think: 0}),
		CallEvent(128),
		AccessEvent(Access{Op: Read, Space: Data, Addr: 0x2008, Size: 8, Think: 5}),
		ReturnEvent(),
		AccessEvent(Access{Op: Write, Space: Data, Addr: 0x200c, Size: 4, Think: 1}),
		ReturnEvent(),
	}
}

func TestSliceStream(t *testing.T) {
	evs := sampleEvents()
	s := NewSliceStream(evs)
	if s.Len() != len(evs) {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s, 0)
	if !reflect.DeepEqual(got, evs) {
		t.Error("collected events differ")
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream yielded event")
	}
	s.Reset()
	if got := Collect(s, 3); len(got) != 3 {
		t.Errorf("bounded collect = %d events", len(got))
	}
	// The constructor must copy: mutating the source must not alter the
	// stream.
	src := sampleEvents()
	s2 := NewSliceStream(src)
	src[0] = AccessEvent(Access{Op: Write, Space: Data, Addr: 1, Size: 1})
	first, _ := s2.Next()
	if first.Kind != KindCall {
		t.Error("NewSliceStream did not copy its input")
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize(NewSliceStream(sampleEvents()))
	if st.Events != 8 {
		t.Errorf("Events = %d", st.Events)
	}
	if st.Reads != 2 || st.Writes != 2 {
		t.Errorf("Reads/Writes = %d/%d", st.Reads, st.Writes)
	}
	if st.CodeAccesses != 1 || st.DataAccesses != 3 {
		t.Errorf("Code/Data = %d/%d", st.CodeAccesses, st.DataAccesses)
	}
	if st.ThinkCycles != 8 {
		t.Errorf("ThinkCycles = %d", st.ThinkCycles)
	}
	if st.Calls != 2 || st.Returns != 2 {
		t.Errorf("Calls/Returns = %d/%d", st.Calls, st.Returns)
	}
	if st.MaxStackBytes != 192 {
		t.Errorf("MaxStackBytes = %d, want 192", st.MaxStackBytes)
	}
	if st.BytesRead != 12 || st.BytesWritten != 8 {
		t.Errorf("Bytes = %d/%d", st.BytesRead, st.BytesWritten)
	}
	if st.Accesses() != 4 {
		t.Errorf("Accesses = %d", st.Accesses())
	}
}

func TestSummarizeUnmatchedReturn(t *testing.T) {
	st := Summarize(NewSliceStream([]Event{ReturnEvent(), CallEvent(32)}))
	if st.MaxStackBytes != 32 {
		t.Errorf("MaxStackBytes = %d, want 32", st.MaxStackBytes)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceStream(sampleEvents())); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got := Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleEvents()) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, sampleEvents())
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	// Property: any randomly generated valid trace survives a
	// write/read roundtrip bit-for-bit.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		evs := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				op := Read
				if rng.Intn(2) == 0 {
					op = Write
				}
				sp := Code
				if rng.Intn(2) == 0 {
					sp = Data
				}
				evs = append(evs, AccessEvent(Access{
					Op: op, Space: sp,
					Addr:  rng.Uint32(),
					Size:  1 + rng.Intn(64),
					Think: rng.Intn(100),
				}))
			case 1:
				evs = append(evs, CallEvent(rng.Intn(1024)))
			default:
				evs = append(evs, ReturnEvent())
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, NewSliceStream(evs)); err != nil {
			return false
		}
		r := NewReader(&buf)
		got := Collect(r, 0)
		return r.Err() == nil && reflect.DeepEqual(got, evs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nA R C 10 4 0\n  \n# trailing\nT\n"
	r := NewReader(strings.NewReader(in))
	got := Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindAccess || got[1].Kind != KindReturn {
		t.Errorf("got %+v", got)
	}
	if got[0].Access.Addr != 0x10 {
		t.Errorf("addr = %#x, want 0x10 (hex)", got[0].Access.Addr)
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	bad := []string{
		"X 1 2",
		"A R C zz 4 0",
		"A Q C 10 4 0",
		"A R X 10 4 0",
		"A R C 10 0 0",
		"A R C 10 4 -1",
		"A R C 10 4",
		"C -5",
		"C x",
		"C",
	}
	for _, in := range bad {
		r := NewReader(strings.NewReader(in + "\n"))
		if _, ok := r.Next(); ok {
			t.Errorf("%q: accepted", in)
			continue
		}
		if err := r.Err(); !errors.Is(err, ErrBadTraceLine) {
			t.Errorf("%q: err = %v, want ErrBadTraceLine", in, err)
		}
	}
}

func TestWriterRejectsUnknownKind(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Event{Kind: Kind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Error is sticky.
	if err := w.Write(CallEvent(4)); err == nil {
		t.Error("sticky error lost")
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush ignored sticky error")
	}
}

func TestStringers(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Op(9).String() != "Op(9)" {
		t.Error("op stringer")
	}
	if Code.String() != "code" || Data.String() != "data" || Space(9).String() != "Space(9)" {
		t.Error("space stringer")
	}
	if KindAccess.String() != "access" || KindCall.String() != "call" ||
		KindReturn.String() != "return" || Kind(9).String() != "Kind(9)" {
		t.Error("kind stringer")
	}
	if !Read.Valid() || !Write.Valid() || Op(0).Valid() {
		t.Error("op validity")
	}
	if !Code.Valid() || !Data.Valid() || Space(0).Valid() {
		t.Error("space validity")
	}
}

func FuzzReaderNeverPanics(f *testing.F) {
	f.Add("A R C 10 4 0\nC 8\nT\n")
	f.Add("# comment\n\nA W D ffffffff 64 3\n")
	f.Add("X bogus\n")
	f.Add("A R C zz 4 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewReader(strings.NewReader(in))
		// Drain; malformed input must surface as Err(), never panic.
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		_ = r.Err()
	})
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint32(0x1000), 4, 0, true, true)
	f.Fuzz(func(t *testing.T, addr uint32, size, think int, read, code bool) {
		if size < 1 || size > 1<<16 || think < 0 || think > 1<<20 {
			t.Skip()
		}
		a := Access{Op: Write, Space: Data, Addr: addr, Size: size, Think: think}
		if read {
			a.Op = Read
		}
		if code {
			a.Space = Code
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, NewSliceStream([]Event{AccessEvent(a)})); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		got := Collect(r, 0)
		if err := r.Err(); err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(got) != 1 || got[0].Access != a {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, a)
		}
	})
}

// Package workloads is the reproduction's substitute for the MiBench
// benchmark suite [28] and for the Section IV case-study program: a set
// of deterministic workload generators, each producing a program image
// (blocks with sizes) and a memory-access trace whose block-level profile
// has the same character — read/write mix, activation structure, stack
// behaviour, hot/cold blocks — as the program it stands in for.
//
// The mapping algorithm and every evaluated metric consume only the
// block-level profile and the access stream, so reproducing those shapes
// preserves the behaviour the paper's evaluation depends on (see
// DESIGN.md §2).
package workloads

import (
	"math/rand"

	"ftspm/internal/program"
	"ftspm/internal/trace"
)

// pattern describes how a workload touches one data block.
type pattern struct {
	// block names the data block.
	block string
	// weight is the relative share of data-activation picks.
	weight float64
	// readFrac is the probability an access within an activation is a
	// read.
	readFrac float64
	// runLen is the mean number of accesses per activation (a maximal
	// burst of accesses to this block before the program moves on); the
	// profiler counts each activation as one block reference.
	runLen int
	// burstWords is the number of 32-bit words touched per access event.
	burstWords int
	// sequential walks offsets linearly within the block when true,
	// uniformly at random when false.
	sequential bool
}

// codeUse describes how a workload fetches one code block.
type codeUse struct {
	// block names the code block.
	block string
	// weight is the relative share of instruction fetches.
	weight float64
	// frameBytes is the stack frame pushed when the block is entered
	// (0 = leaf code entered without a call marker).
	frameBytes int
	// stackTouch is the number of stack words spilled on entry and
	// reloaded on exit.
	stackTouch int
}

// segment is one phase of a workload's execution.
type segment struct {
	// share is the fraction of the workload's activations spent in this
	// segment.
	share float64
	// patterns are the data patterns active in the segment.
	patterns []pattern
	// code are the code blocks executing in the segment.
	code []codeUse
	// callEvery issues a call/return pair (with stack traffic) once per
	// this many activations; 0 disables calls in the segment.
	callEvery int
	// think is the mean compute-cycle gap in front of each access.
	think int
	// fetchEvery emits one instruction-fetch burst per this many data
	// accesses (models the I-side bandwidth relative to the D-side).
	fetchEvery int
	// fetchWords is the length of one instruction-fetch burst in words.
	fetchWords int
}

// spec declares a complete synthetic workload.
type spec struct {
	name string
	desc string
	// blocks lists every program block (code, data, stack).
	blocks []blockSpec
	// stack names the stack block used by call markers.
	stack string
	// segments are executed in order.
	segments []segment
	// activations is the total activation count at scale 1.0.
	activations int
	// seed fixes the generator's randomness.
	seed int64
}

type blockSpec struct {
	name string
	kind program.BlockKind
	size int
}

// buildProgram materializes the spec's program image.
func (s spec) buildProgram() *program.Program {
	p := program.New(s.name)
	for _, b := range s.blocks {
		p.MustAddBlock(b.name, b.kind, b.size)
	}
	return p
}

// generate materializes the spec's trace at the given scale. Scale
// multiplies the activation count; 1.0 is the reference length. The
// slice is produced by draining the streaming generator, so the two
// paths emit identical event sequences by construction.
func (s spec) generate(p *program.Program, scale float64) []trace.Event {
	st := s.stream(p, scale)
	var out []trace.Event
	for {
		e, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// rpattern, rcodeUse, and rsegment are spec shapes with the block names
// resolved to IDs once at stream construction, so the per-event hot
// path indexes dense slices instead of hashing names.
type rpattern struct {
	pattern
	id program.BlockID
}

type rcodeUse struct {
	codeUse
	id program.BlockID
}

type rsegment struct {
	seg      segment // scalar knobs: callEvery, think, fetchEvery, fetchWords
	patterns []rpattern
	code     []rcodeUse
}

// stream returns a pull-based generator over the spec's trace at the
// given scale. Events are produced one activation at a time into a
// small reused buffer, so consumers never hold the whole trace; the
// generator is seeded, so rebuilding the stream replays the identical
// sequence.
func (s spec) stream(p *program.Program, scale float64) *genStream {
	if scale <= 0 {
		scale = 1.0
	}
	total := int(float64(s.activations) * scale)
	if total < 1 {
		total = 1
	}
	counts := make([]int, len(s.segments))
	rsegs := make([]rsegment, len(s.segments))
	mustID := func(name string) program.BlockID {
		id, ok := p.Lookup(name)
		if !ok {
			panic("workloads: spec references unknown block " + name)
		}
		return id
	}
	for i, seg := range s.segments {
		n := int(float64(total) * seg.share)
		if n < 1 {
			n = 1
		}
		counts[i] = n
		rs := rsegment{seg: seg}
		for _, pt := range seg.patterns {
			rs.patterns = append(rs.patterns, rpattern{pattern: pt, id: mustID(pt.block)})
		}
		for _, c := range seg.code {
			rs.code = append(rs.code, rcodeUse{codeUse: c, id: mustID(c.block)})
		}
		rsegs[i] = rs
	}
	g := &generator{
		blocks: p.Blocks(),
		rng:    rand.New(rand.NewSource(s.seed)),
		cursor: make([]int, p.NumBlocks()),
	}
	// A spec without a (known) stack block simply emits no call frames,
	// matching the lookup-and-skip of earlier versions.
	if id, ok := p.Lookup(s.stack); ok {
		g.stackID, g.hasStack = id, true
	}
	return &genStream{g: g, segments: rsegs, counts: counts}
}

// genStream adapts the generator to the trace.Stream pull interface:
// each refill runs exactly one activation, so the buffer stays a few
// hundred events regardless of trace length.
type genStream struct {
	g        *generator
	segments []rsegment
	counts   []int
	segIdx   int
	actIdx   int
	pos      int
}

var _ trace.Stream = (*genStream)(nil)

// Next implements trace.Stream.
func (st *genStream) Next() (trace.Event, bool) {
	for st.pos >= len(st.g.events) {
		if st.segIdx >= len(st.segments) {
			return trace.Event{}, false
		}
		st.g.events = st.g.events[:0]
		st.pos = 0
		st.g.runActivation(st.segments[st.segIdx], st.actIdx)
		st.actIdx++
		if st.actIdx >= st.counts[st.segIdx] {
			st.segIdx++
			st.actIdx = 0
		}
	}
	e := st.g.events[st.pos]
	st.pos++
	return e, true
}

// generator emits trace events for a spec.
type generator struct {
	blocks []program.Block // dense BlockID → block descriptor
	rng    *rand.Rand
	events []trace.Event

	// stackID names the stack block used by call markers; hasStack is
	// false when the spec's stack block does not exist.
	stackID  program.BlockID
	hasStack bool
	// cursor tracks the sequential offset per block, indexed by BlockID.
	cursor []int
	// sinceFetch counts data accesses since the last instruction fetch.
	sinceFetch int
	// stackDepth is the current call-stack depth in bytes (frames are
	// addressed by depth, like a real descending stack).
	stackDepth int
}

// runActivation emits the events of one activation: the periodic
// call/return pair, the entry fetch burst, and the data run.
func (g *generator) runActivation(seg rsegment, act int) {
	totalW := 0.0
	for _, pt := range seg.patterns {
		totalW += pt.weight
	}
	if seg.seg.callEvery > 0 && act%seg.seg.callEvery == 0 {
		g.emitCall(seg)
	}
	pt := g.pickPattern(seg.patterns, totalW)
	g.fetchBurst(seg) // entering the activation executes code
	runLen := 1 + g.rng.Intn(2*pt.runLen)
	for i := 0; i < runLen; i++ {
		g.emitData(pt, seg)
	}
}

func (g *generator) pickPattern(patterns []rpattern, totalW float64) rpattern {
	u := g.rng.Float64() * totalW
	for _, pt := range patterns {
		if u < pt.weight {
			return pt
		}
		u -= pt.weight
	}
	return patterns[len(patterns)-1]
}

// emitData issues one access event according to the pattern.
func (g *generator) emitData(pt rpattern, seg rsegment) {
	b := &g.blocks[pt.id]
	size := pt.burstWords * 4
	if size <= 0 {
		size = 4
	}
	if size > b.Size {
		size = b.Size
	}
	var off int
	if pt.sequential {
		off = g.cursor[pt.id]
		g.cursor[pt.id] = (off + size) % maxOffset(b.Size, size)
	} else {
		off = g.rng.Intn(maxOffset(b.Size, size))
		off &^= 3 // word-align
	}
	op := trace.Write
	if g.rng.Float64() < pt.readFrac {
		op = trace.Read
	}
	think := 0
	if seg.seg.think > 0 {
		think = g.rng.Intn(2*seg.seg.think + 1)
	}
	g.events = append(g.events, trace.AccessEvent(trace.Access{
		Op: op, Space: trace.Data,
		Addr: b.Addr + uint32(off), Size: size, Think: think,
	}))
	g.sinceFetch++
	if seg.seg.fetchEvery > 0 && g.sinceFetch >= seg.seg.fetchEvery {
		g.sinceFetch = 0
		g.fetchBurst(seg)
	}
}

func maxOffset(blockSize, accessSize int) int {
	m := blockSize - accessSize + 1
	if m < 1 {
		return 1
	}
	return m
}

// fetchBurst emits one instruction-fetch burst from a weighted code
// block.
func (g *generator) fetchBurst(seg rsegment) {
	if len(seg.code) == 0 {
		return
	}
	totalW := 0.0
	for _, c := range seg.code {
		totalW += c.weight
	}
	u := g.rng.Float64() * totalW
	use := seg.code[len(seg.code)-1]
	for _, c := range seg.code {
		if u < c.weight {
			use = c
			break
		}
		u -= c.weight
	}
	b := &g.blocks[use.id]
	words := seg.seg.fetchWords
	if words <= 0 {
		words = 8
	}
	size := words * 4
	if size > b.Size {
		size = b.Size
	}
	off := g.cursor[use.id]
	g.cursor[use.id] = (off + size) % maxOffset(b.Size, size)
	g.events = append(g.events, trace.AccessEvent(trace.Access{
		Op: trace.Read, Space: trace.Code,
		Addr: b.Addr + uint32(off), Size: size, Think: 0,
	}))
}

// emitCall pushes a frame: call marker, spill writes to the stack block,
// and the matching return with reload reads. Frames are addressed by the
// current call depth, exactly as a real stack: successive calls at the
// same nesting level rewrite the same words, which is what makes the
// stack the write-endurance hot spot of the paper's evaluation (Table
// III's pure-STT lifetime collapses because of cells like these).
func (g *generator) emitCall(seg rsegment) {
	use := seg.code[g.rng.Intn(len(seg.code))]
	if use.frameBytes == 0 {
		return
	}
	if !g.hasStack {
		return
	}
	b := &g.blocks[g.stackID]
	g.events = append(g.events, trace.CallEvent(use.frameBytes))
	touch := use.stackTouch
	if touch*4 > b.Size {
		touch = b.Size / 4
	}
	base := g.stackDepth % maxOffset(b.Size, 4)
	g.stackDepth += use.frameBytes
	for i := 0; i < touch; i++ {
		off := (base + i*4) % maxOffset(b.Size, 4)
		g.events = append(g.events, trace.AccessEvent(trace.Access{
			Op: trace.Write, Space: trace.Data,
			Addr: b.Addr + uint32(off), Size: 4, Think: 0,
		}))
	}
	for i := 0; i < touch; i++ {
		off := (base + i*4) % maxOffset(b.Size, 4)
		g.events = append(g.events, trace.AccessEvent(trace.Access{
			Op: trace.Read, Space: trace.Data,
			Addr: b.Addr + uint32(off), Size: 4, Think: 0,
		}))
	}
	g.stackDepth -= use.frameBytes
	g.events = append(g.events, trace.ReturnEvent())
}

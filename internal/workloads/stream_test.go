package workloads

import (
	"reflect"
	"sync"
	"testing"

	"ftspm/internal/trace"
)

// TestTraceStreamMatchesSlice pins the tentpole determinism contract:
// the streaming generator must emit the byte-identical event sequence
// of the materialized slice path, for every workload in the repo.
func TestTraceStreamMatchesSlice(t *testing.T) {
	for _, w := range All() {
		slice := trace.Collect(w.Trace(0.05), 0)
		stream := trace.Collect(w.TraceStream(0.05), 0)
		if len(slice) != len(stream) {
			t.Fatalf("%s: slice %d events, stream %d", w.Name, len(slice), len(stream))
		}
		if !reflect.DeepEqual(slice, stream) {
			t.Fatalf("%s: stream diverges from slice path", w.Name)
		}
	}
}

// TestTraceStreamReplayable: rebuilding the stream replays the same
// sequence (the seeded-replay property the cache and the sweep engine
// rely on).
func TestTraceStreamReplayable(t *testing.T) {
	w := CaseStudy()
	a := trace.Collect(w.TraceStream(0.05), 0)
	b := trace.Collect(w.TraceStream(0.05), 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rebuilding the stream changed the sequence")
	}
}

// TestTraceStreamBounded checks that the pull path works incrementally:
// taking a prefix of the stream matches the prefix of the full trace.
func TestTraceStreamBounded(t *testing.T) {
	w := CaseStudy()
	full := trace.Collect(w.TraceStream(0.05), 0)
	prefix := trace.Collect(w.TraceStream(0.05), 100)
	if len(prefix) != 100 {
		t.Fatalf("prefix length %d, want 100", len(prefix))
	}
	if !reflect.DeepEqual(prefix, full[:100]) {
		t.Fatal("streamed prefix diverges from the full trace")
	}
}

func TestTraceCacheHitsAndSharing(t *testing.T) {
	w := CaseStudy()
	c := NewTraceCache(2)
	ev1 := c.Events(w, 0.05)
	ev2 := c.Events(w, 0.05)
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if &ev1[0] != &ev2[0] {
		t.Fatal("cache hit did not share the backing array")
	}
	want := trace.Collect(w.Trace(0.05), 0)
	got := trace.Collect(c.Stream(w, 0.05), 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cached replay diverges from the generator")
	}
}

func TestTraceCacheEviction(t *testing.T) {
	w := CaseStudy()
	c := NewTraceCache(2)
	ev1 := c.Events(w, 0.01)
	c.Events(w, 0.02)
	c.Events(w, 0.03) // evicts 0.01 (LRU)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d traces, want capacity 2", c.Len())
	}
	ev1b := c.Events(w, 0.01) // regenerated after eviction
	if &ev1[0] == &ev1b[0] {
		t.Fatal("evicted entry was still served from cache")
	}
	if !reflect.DeepEqual(ev1, ev1b) {
		t.Fatal("regenerated trace diverges from the original")
	}
}

// TestTraceCacheConcurrent hammers one cache from many goroutines; the
// race detector guards the locking and every caller must observe the
// reference sequence.
func TestTraceCacheConcurrent(t *testing.T) {
	w := CaseStudy()
	ref := trace.Collect(w.Trace(0.02), 0)
	c := NewTraceCache(2)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := trace.Collect(c.Stream(w, 0.02), 0)
			if !reflect.DeepEqual(ref, got) {
				errs <- "concurrent reader saw a divergent trace"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

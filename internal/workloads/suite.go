package workloads

import "ftspm/internal/program"

// suiteSpecs declares the 12 MiBench-substitute workloads. Each spec's
// block sizes and access character are modelled on the published
// behaviour of the MiBench program it stands in for (working-set sizes,
// read/write mixes, stack usage); see the per-spec comments.
func suiteSpecs() []spec {
	return []spec{
		qsortSpec(), shaSpec(), crc32Spec(), dijkstraSpec(),
		fftSpec(), stringsearchSpec(), bitcountSpec(), basicmathSpec(),
		susanSpec(), jpegSpec(), adpcmSpec(), patriciaSpec(),
	}
}

// qsort: recursion-heavy sort; the sorted array is read/write hot and the
// stack churns with partition calls.
func qsortSpec() spec {
	return spec{
		name: "qsort",
		desc: "recursive quick-sort: write-hot sort array, deep stack churn",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 3 * 1024},
			{"Partition", program.CodeBlock, 1 * 1024},
			{"Compare", program.CodeBlock, 512},
			{"SortArr", program.DataBlock, 2 * 1024},
			{"Input", program.DataBlock, 4 * 1024},
			{"Scratch", program.DataBlock, 1 * 1024},
			{"Stack", program.StackBlock, 1024},
		},
		stack:       "Stack",
		activations: 14000,
		seed:        2001,
		segments: []segment{
			{
				share: 0.15, // load input
				patterns: []pattern{
					{block: "Input", weight: 0.55, readFrac: 0.99, runLen: 30, burstWords: 4, sequential: true},
					{block: "SortArr", weight: 0.45, readFrac: 0.05, runLen: 30, burstWords: 2, sequential: true},
				},
				code:       []codeUse{{block: "Main", weight: 1}},
				think:      1,
				fetchEvery: 4, fetchWords: 8,
			},
			{
				share: 0.85, // recursive sorting
				patterns: []pattern{
					{block: "SortArr", weight: 0.70, readFrac: 0.58, runLen: 18, burstWords: 1},
					{block: "Scratch", weight: 0.20, readFrac: 0.45, runLen: 10, burstWords: 1},
					{block: "Input", weight: 0.10, readFrac: 1.0, runLen: 12, burstWords: 2},
				},
				code: []codeUse{
					{block: "Partition", weight: 0.8, frameBytes: 96, stackTouch: 10},
					{block: "Compare", weight: 0.2, frameBytes: 32, stackTouch: 4},
				},
				callEvery:  1,
				think:      1,
				fetchEvery: 2, fetchWords: 12,
			},
		},
	}
}

// sha: hash over a message buffer; big read-only input, tiny hot state.
func shaSpec() spec {
	return spec{
		name: "sha",
		desc: "SHA digest: streaming read-only message, small write-hot state",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"ShaTransform", program.CodeBlock, 2 * 1024},
			{"MsgBuf", program.DataBlock, 4 * 1024},
			{"W", program.DataBlock, 512},
			{"State", program.DataBlock, 256},
			{"Konst", program.DataBlock, 512},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 13000,
		seed:        2002,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "MsgBuf", weight: 0.42, readFrac: 0.998, runLen: 24, burstWords: 4, sequential: true},
					{block: "W", weight: 0.28, readFrac: 0.55, runLen: 20, burstWords: 1, sequential: true},
					{block: "State", weight: 0.20, readFrac: 0.60, runLen: 12, burstWords: 1},
					{block: "Konst", weight: 0.10, readFrac: 1.0, runLen: 10, burstWords: 1},
				},
				code: []codeUse{
					{block: "ShaTransform", weight: 0.9, frameBytes: 64, stackTouch: 6},
					{block: "Main", weight: 0.1},
				},
				callEvery:  4,
				think:      1,
				fetchEvery: 2, fetchWords: 16,
			},
		},
	}
}

// crc32: pure streaming checksum; almost no writes.
func crc32Spec() spec {
	return spec{
		name: "crc32",
		desc: "CRC-32 checksum: sequential read-only stream and lookup table",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 1 * 1024},
			{"CrcLoop", program.CodeBlock, 512},
			{"Data", program.DataBlock, 6 * 1024},
			{"CrcTab", program.DataBlock, 1024},
			{"CrcState", program.DataBlock, 64},
			{"Stack", program.StackBlock, 256},
		},
		stack:       "Stack",
		activations: 12000,
		seed:        2003,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "Data", weight: 0.55, readFrac: 1.0, runLen: 28, burstWords: 4, sequential: true},
					{block: "CrcTab", weight: 0.35, readFrac: 1.0, runLen: 20, burstWords: 1},
					{block: "CrcState", weight: 0.10, readFrac: 0.50, runLen: 6, burstWords: 1},
				},
				code: []codeUse{
					{block: "CrcLoop", weight: 0.92},
					{block: "Main", weight: 0.08},
				},
				think:      1,
				fetchEvery: 3, fetchWords: 8,
			},
		},
	}
}

// dijkstra: irregular reads over an adjacency matrix, moderate writes to
// distance/queue state.
func dijkstraSpec() spec {
	return spec{
		name: "dijkstra",
		desc: "Dijkstra shortest path: random adjacency reads, warm dist/queue writes",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"Relax", program.CodeBlock, 1 * 1024},
			{"AdjMatrix", program.DataBlock, 6 * 1024},
			{"Dist", program.DataBlock, 1024},
			{"Queue", program.DataBlock, 512},
			{"Prev", program.DataBlock, 1024},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 13000,
		seed:        2004,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "AdjMatrix", weight: 0.50, readFrac: 0.999, runLen: 22, burstWords: 2},
					{block: "Dist", weight: 0.22, readFrac: 0.70, runLen: 10, burstWords: 1},
					{block: "Queue", weight: 0.16, readFrac: 0.55, runLen: 8, burstWords: 1},
					{block: "Prev", weight: 0.12, readFrac: 0.80, runLen: 8, burstWords: 1},
				},
				code: []codeUse{
					{block: "Relax", weight: 0.75, frameBytes: 48, stackTouch: 5},
					{block: "Main", weight: 0.25},
				},
				callEvery:  3,
				think:      2,
				fetchEvery: 2, fetchWords: 10,
			},
		},
	}
}

// fft: butterfly passes over real/imaginary arrays with a read-only
// twiddle table.
func fftSpec() spec {
	return spec{
		name: "fft",
		desc: "radix-2 FFT: balanced read/write butterflies, read-only twiddles",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"Butterfly", program.CodeBlock, 1536},
			// 256-point transform: 1 KB real + 1 KB imaginary, so the
			// write-hot pair can co-reside in the 2 KB ECC region.
			{"Real", program.DataBlock, 1 * 1024},
			{"Imag", program.DataBlock, 1 * 1024},
			{"Twiddle", program.DataBlock, 2 * 1024},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 1400,
		seed:        2005,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					// Butterfly passes stream through a whole array per
					// reference; the long runs let the on-line transfers
					// of the time-shared ECC region amortize.
					{block: "Real", weight: 0.33, readFrac: 0.62, runLen: 250, burstWords: 1, sequential: true},
					{block: "Imag", weight: 0.33, readFrac: 0.62, runLen: 250, burstWords: 1, sequential: true},
					{block: "Twiddle", weight: 0.34, readFrac: 1.0, runLen: 200, burstWords: 1},
				},
				code: []codeUse{
					{block: "Butterfly", weight: 0.88, frameBytes: 80, stackTouch: 8},
					{block: "Main", weight: 0.12},
				},
				callEvery:  6,
				think:      2,
				fetchEvery: 2, fetchWords: 12,
			},
		},
	}
}

// stringsearch: Boyer-Moore-style scan; reads dominate utterly.
func stringsearchSpec() spec {
	return spec{
		name: "stringsearch",
		desc: "Boyer-Moore search: read-only text/pattern, tiny match output",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 1536},
			{"BMSearch", program.CodeBlock, 1 * 1024},
			{"Text", program.DataBlock, 6 * 1024},
			{"Patterns", program.DataBlock, 512},
			{"ShiftTab", program.DataBlock, 256},
			{"Matches", program.DataBlock, 256},
			{"Stack", program.StackBlock, 256},
		},
		stack:       "Stack",
		activations: 12000,
		seed:        2006,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "Text", weight: 0.62, readFrac: 1.0, runLen: 26, burstWords: 2, sequential: true},
					{block: "Patterns", weight: 0.16, readFrac: 1.0, runLen: 10, burstWords: 1},
					{block: "ShiftTab", weight: 0.14, readFrac: 0.85, runLen: 8, burstWords: 1},
					{block: "Matches", weight: 0.08, readFrac: 0.30, runLen: 4, burstWords: 1},
				},
				code: []codeUse{
					{block: "BMSearch", weight: 0.85, frameBytes: 40, stackTouch: 4},
					{block: "Main", weight: 0.15},
				},
				callEvery:  8,
				think:      1,
				fetchEvery: 2, fetchWords: 10,
			},
		},
	}
}

// bitcount: compute-bound bit tricks; memory traffic is light and mostly
// reads.
func bitcountSpec() spec {
	return spec{
		name: "bitcount",
		desc: "bit-counting kernels: compute-bound, light read-mostly traffic",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 1 * 1024},
			{"BitKernels", program.CodeBlock, 1 * 1024},
			{"Bits", program.DataBlock, 2 * 1024},
			{"LUT", program.DataBlock, 512},
			{"Counters", program.DataBlock, 128},
			{"Stack", program.StackBlock, 256},
		},
		stack:       "Stack",
		activations: 11000,
		seed:        2007,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "Bits", weight: 0.55, readFrac: 1.0, runLen: 20, burstWords: 2, sequential: true},
					{block: "LUT", weight: 0.30, readFrac: 1.0, runLen: 12, burstWords: 1},
					{block: "Counters", weight: 0.15, readFrac: 0.45, runLen: 6, burstWords: 1},
				},
				code: []codeUse{
					{block: "BitKernels", weight: 0.9, frameBytes: 24, stackTouch: 3},
					{block: "Main", weight: 0.1},
				},
				callEvery:  10,
				think:      4,
				fetchEvery: 1, fetchWords: 12,
			},
		},
	}
}

// basicmath: cubic/angle math; dominated by compute with small data.
func basicmathSpec() spec {
	return spec{
		name: "basicmath",
		desc: "basic math kernels: compute-dominated, small mixed data",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"Solvers", program.CodeBlock, 2 * 1024},
			{"Coef", program.DataBlock, 1024},
			{"Results", program.DataBlock, 512},
			{"Temp", program.DataBlock, 256},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 11000,
		seed:        2008,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "Coef", weight: 0.45, readFrac: 0.99, runLen: 12, burstWords: 1},
					{block: "Results", weight: 0.30, readFrac: 0.35, runLen: 8, burstWords: 1, sequential: true},
					{block: "Temp", weight: 0.25, readFrac: 0.50, runLen: 8, burstWords: 1},
				},
				code: []codeUse{
					{block: "Solvers", weight: 0.85, frameBytes: 56, stackTouch: 6},
					{block: "Main", weight: 0.15},
				},
				callEvery:  5,
				think:      4,
				fetchEvery: 1, fetchWords: 14,
			},
		},
	}
}

// susan: image smoothing; large read-only image, write-hot output tile.
func susanSpec() spec {
	return spec{
		name: "susan",
		desc: "SUSAN image smoothing: big read-only image, write-hot output tile",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"SusanSmooth", program.CodeBlock, 2 * 1024},
			{"Image", program.DataBlock, 6 * 1024},
			{"OutTile", program.DataBlock, 2 * 1024},
			{"BrightLUT", program.DataBlock, 512},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 14000,
		seed:        2009,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "Image", weight: 0.52, readFrac: 0.999, runLen: 24, burstWords: 2, sequential: true},
					{block: "OutTile", weight: 0.28, readFrac: 0.12, runLen: 14, burstWords: 1, sequential: true},
					{block: "BrightLUT", weight: 0.20, readFrac: 1.0, runLen: 10, burstWords: 1},
				},
				code: []codeUse{
					{block: "SusanSmooth", weight: 0.9, frameBytes: 72, stackTouch: 7},
					{block: "Main", weight: 0.1},
				},
				callEvery:  6,
				think:      1,
				fetchEvery: 2, fetchWords: 14,
			},
		},
	}
}

// jpeg: decode-style pipeline with phases: read input, transform through
// a scratch buffer, write output.
func jpegSpec() spec {
	return spec{
		name: "jpeg",
		desc: "JPEG-style decode: phased input read, DCT scratch, output write",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 3 * 1024},
			{"IDCT", program.CodeBlock, 2 * 1024},
			{"Huffman", program.CodeBlock, 1536},
			{"Input", program.DataBlock, 4 * 1024},
			{"Output", program.DataBlock, 2 * 1024},
			{"DCTBuf", program.DataBlock, 512},
			{"QuantTab", program.DataBlock, 256},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 1700,
		seed:        2010,
		segments: []segment{
			{
				share: 0.35, // entropy decode
				patterns: []pattern{
					{block: "Input", weight: 0.70, readFrac: 1.0, runLen: 180, burstWords: 2, sequential: true},
					{block: "DCTBuf", weight: 0.30, readFrac: 0.30, runLen: 30, burstWords: 1, sequential: true},
				},
				code: []codeUse{
					{block: "Huffman", weight: 0.9, frameBytes: 48, stackTouch: 5},
					{block: "Main", weight: 0.1},
				},
				callEvery:  5,
				think:      1,
				fetchEvery: 2, fetchWords: 12,
			},
			{
				share: 0.65, // IDCT + color out
				patterns: []pattern{
					{block: "DCTBuf", weight: 0.32, readFrac: 0.55, runLen: 40, burstWords: 1},
					{block: "QuantTab", weight: 0.18, readFrac: 1.0, runLen: 60, burstWords: 1},
					{block: "Output", weight: 0.34, readFrac: 0.10, runLen: 120, burstWords: 2, sequential: true},
					{block: "Input", weight: 0.16, readFrac: 1.0, runLen: 80, burstWords: 2, sequential: true},
				},
				code: []codeUse{
					{block: "IDCT", weight: 0.85, frameBytes: 64, stackTouch: 6},
					{block: "Main", weight: 0.15},
				},
				callEvery:  4,
				think:      1,
				fetchEvery: 2, fetchWords: 14,
			},
		},
	}
}

// adpcm: codec streaming: sequential read of PCM, sequential write of
// compressed output, tiny hot state.
func adpcmSpec() spec {
	return spec{
		name: "adpcm",
		desc: "ADPCM codec: sequential PCM reads, sequential compressed writes",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 1 * 1024},
			{"Coder", program.CodeBlock, 1 * 1024},
			{"PCM", program.DataBlock, 4 * 1024},
			{"Compressed", program.DataBlock, 2 * 1024},
			{"StepTab", program.DataBlock, 512},
			{"CoderState", program.DataBlock, 64},
			{"Stack", program.StackBlock, 256},
		},
		stack:       "Stack",
		activations: 13000,
		seed:        2011,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "PCM", weight: 0.44, readFrac: 0.999, runLen: 24, burstWords: 2, sequential: true},
					{block: "Compressed", weight: 0.24, readFrac: 0.05, runLen: 16, burstWords: 1, sequential: true},
					{block: "StepTab", weight: 0.22, readFrac: 1.0, runLen: 10, burstWords: 1},
					{block: "CoderState", weight: 0.10, readFrac: 0.50, runLen: 6, burstWords: 1},
				},
				code: []codeUse{
					{block: "Coder", weight: 0.9, frameBytes: 32, stackTouch: 4},
					{block: "Main", weight: 0.1},
				},
				callEvery:  7,
				think:      1,
				fetchEvery: 2, fetchWords: 10,
			},
		},
	}
}

// patricia: trie insertion/lookup; pointer-chasing reads with node
// updates and recursion.
func patriciaSpec() spec {
	return spec{
		name: "patricia",
		desc: "Patricia trie: pointer-chasing node reads, update writes, recursion",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"Insert", program.CodeBlock, 1536},
			{"Lookup", program.CodeBlock, 1 * 1024},
			{"Nodes", program.DataBlock, 4 * 1024},
			{"Keys", program.DataBlock, 2 * 1024},
			{"Results", program.DataBlock, 256},
			{"Stack", program.StackBlock, 1024},
		},
		stack:       "Stack",
		activations: 13000,
		seed:        2012,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "Nodes", weight: 0.52, readFrac: 0.92, runLen: 14, burstWords: 1},
					{block: "Keys", weight: 0.30, readFrac: 1.0, runLen: 12, burstWords: 1, sequential: true},
					{block: "Results", weight: 0.18, readFrac: 0.25, runLen: 5, burstWords: 1},
				},
				code: []codeUse{
					{block: "Insert", weight: 0.45, frameBytes: 88, stackTouch: 9},
					{block: "Lookup", weight: 0.45, frameBytes: 56, stackTouch: 6},
					{block: "Main", weight: 0.10},
				},
				callEvery:  2,
				think:      2,
				fetchEvery: 2, fetchWords: 10,
			},
		},
	}
}

// extraSpecs are workloads resolvable by name but outside the canonical
// 12-program suite (so the recorded Figs. 4-8 numbers stay stable).
func extraSpecs() []spec {
	return []spec{matmulSpec()}
}

// matmul: dense matrix multiply with a write-hot 4 KB output tile — too
// large for either 2 KB SRAM region as one block, the showcase for the
// fine-grained mapping ablation ([15]).
func matmulSpec() spec {
	return spec{
		name: "matmul",
		desc: "dense matrix multiply: read-only A/B, write-hot 4 KB output tile",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 2 * 1024},
			{"Kernel", program.CodeBlock, 2 * 1024},
			{"A", program.DataBlock, 4 * 1024},
			{"B", program.DataBlock, 4 * 1024},
			{"Out", program.DataBlock, 4 * 1024},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 1600,
		seed:        2013,
		segments: []segment{
			{
				share: 1.0,
				patterns: []pattern{
					{block: "A", weight: 0.34, readFrac: 1.0, runLen: 220, burstWords: 2, sequential: true},
					{block: "B", weight: 0.34, readFrac: 1.0, runLen: 220, burstWords: 2},
					{block: "Out", weight: 0.32, readFrac: 0.35, runLen: 260, burstWords: 1, sequential: true},
				},
				code: []codeUse{
					{block: "Kernel", weight: 0.9, frameBytes: 64, stackTouch: 6},
					{block: "Main", weight: 0.1},
				},
				callEvery:  4,
				think:      1,
				fetchEvery: 2, fetchWords: 12,
			},
		},
	}
}

package workloads

import (
	"sync"

	"ftspm/internal/trace"
)

// traceKey identifies one deterministic trace: the generators are
// seeded, so (workload, scale) fully determines the event sequence.
type traceKey struct {
	name  string
	scale float64
}

// TraceCache is a small bounded cache of materialized traces keyed by
// (workload, scale). Repeated runs — the shape of every ablation and
// fault-injection campaign — get a no-copy replay stream instead of
// regenerating the trace; capacity misses evict the least recently
// used entry. The cached slices are immutable, so hits are
// deterministic replays of the seeded generator and the cache is safe
// for concurrent use.
type TraceCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[traceKey][]trace.Event
	order    []traceKey // LRU order, oldest first
	hits     int
	misses   int
}

// NewTraceCache returns a cache holding at most capacity traces
// (capacity < 1 is clamped to 1).
func NewTraceCache(capacity int) *TraceCache {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceCache{
		capacity: capacity,
		entries:  make(map[traceKey][]trace.Event),
	}
}

// Stream returns a replay stream over the cached trace of (w, scale),
// materializing it on first use. Every returned stream owns its own
// cursor, so concurrent consumers do not interfere.
func (c *TraceCache) Stream(w Workload, scale float64) *trace.SliceStream {
	return trace.Replay(c.Events(w, scale))
}

// Events returns the cached materialized trace of (w, scale),
// generating and inserting it on a miss. Callers must treat the slice
// as read-only.
func (c *TraceCache) Events(w Workload, scale float64) []trace.Event {
	key := traceKey{name: w.Name, scale: scale}
	c.mu.Lock()
	if ev, ok := c.entries[key]; ok {
		c.hits++
		c.touch(key)
		c.mu.Unlock()
		return ev
	}
	c.misses++
	c.mu.Unlock()

	// Generate outside the lock: traces are big and deterministic, so a
	// duplicate concurrent generation costs time, never correctness.
	ev := w.spec.generate(w.prog, scale)

	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.entries[key]; ok {
		return cached // another goroutine won the race
	}
	for len(c.order) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = ev
	c.order = append(c.order, key)
	return ev
}

// touch moves key to the most-recently-used end. Callers hold c.mu.
func (c *TraceCache) touch(key traceKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// Stats reports the hit and miss counts since construction.
func (c *TraceCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached traces.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package workloads

import (
	"errors"
	"fmt"
	"sort"

	"ftspm/internal/program"
	"ftspm/internal/trace"
)

// Workload bundles a program image with its deterministic trace
// generator.
type Workload struct {
	// Name is the suite-unique identifier (MiBench-style lowercase).
	Name string
	// Description says which program the generator stands in for and
	// what its access character is.
	Description string

	spec spec
	prog *program.Program
}

// Program returns the workload's program image. The image is shared;
// callers must not mutate it (Program has no mutating methods besides
// AddBlock, which callers must not invoke).
func (w Workload) Program() *program.Program { return w.prog }

// Trace materializes the workload's access trace at the given scale
// (1.0 = reference length; experiments use smaller scales for quick
// runs). The trace is deterministic per (workload, scale).
func (w Workload) Trace(scale float64) *trace.SliceStream {
	return trace.Replay(w.spec.generate(w.prog, scale))
}

// TraceStream returns the workload's trace as a streaming generator:
// events are produced on demand, one activation at a time, so the
// consumer never holds the materialized trace. The stream emits the
// byte-identical event sequence of Trace (the slice path is defined as
// a drain of this stream); rebuilding the stream replays it.
func (w Workload) TraceStream(scale float64) trace.Stream {
	return w.spec.stream(w.prog, scale)
}

// TraceEvents materializes the trace as a raw event slice. The caller
// owns the slice; sharing it read-only across trace.Replay streams is
// how the sweep engine amortizes generation over several consumers.
func (w Workload) TraceEvents(scale float64) []trace.Event {
	return w.spec.generate(w.prog, scale)
}

// ErrUnknownWorkload is returned by ByName for names not in the suite.
var ErrUnknownWorkload = errors.New("workloads: unknown workload")

// CaseStudyName is the name of the Section IV motivational-example
// workload.
const CaseStudyName = "casestudy"

// CaseStudy returns the Section IV case-study program: two multiply
// functions, two add functions, and a quick-sort over four ~2 KB arrays
// (Algorithm 2), with the block set of Table I — a Main too large for the
// 16 KB I-SPM, hot Mul/Add kernels, two read-write arrays (Array1/3), two
// read-mostly arrays (Array2/4), and a write-hot short-lived stack.
func CaseStudy() Workload {
	return build(caseStudySpec())
}

func caseStudySpec() spec {
	return spec{
		name: CaseStudyName,
		desc: "Section IV motivational example: mul/add/qsort over four arrays",
		blocks: []blockSpec{
			{"Main", program.CodeBlock, 20 * 1024}, // exceeds the 16 KB I-SPM, stays unmapped
			{"Mul", program.CodeBlock, 2 * 1024},
			{"Add", program.CodeBlock, 1 * 1024},
			{"Array1", program.DataBlock, 2 * 1024},
			{"Array2", program.DataBlock, 2 * 1024},
			{"Array3", program.DataBlock, 2 * 1024},
			{"Array4", program.DataBlock, 2 * 1024},
			{"Stack", program.StackBlock, 512},
		},
		stack:       "Stack",
		activations: 2000,
		seed:        1301,
		segments: []segment{
			{ // initialization of the read-write arrays (Algorithm 2 line
				// 1; the one-off loader copies into Array2/4 are excluded
				// from profiling, as Table I's footnote explains)
				share: 0.04,
				patterns: []pattern{
					{block: "Array1", weight: 1, readFrac: 0.02, runLen: 150, burstWords: 4, sequential: true},
					{block: "Array3", weight: 1, readFrac: 0.02, runLen: 150, burstWords: 4, sequential: true},
				},
				code:       []codeUse{{block: "Main", weight: 1, frameBytes: 0}},
				think:      1,
				fetchEvery: 4, fetchWords: 8,
			},
			{ // mul/add loop nest (Algorithm 2 lines 3-6). Each block
				// reference streams through a long stretch of the array —
				// Table I reports ~10,800 reads per reference — so the
				// on-line transfers amortize over long activations.
				share: 0.74,
				patterns: []pattern{
					{block: "Array1", weight: 0.26, readFrac: 0.66, runLen: 500, burstWords: 1, sequential: true},
					{block: "Array2", weight: 0.15, readFrac: 0.9995, runLen: 500, burstWords: 1, sequential: true},
					{block: "Array3", weight: 0.34, readFrac: 0.66, runLen: 500, burstWords: 1, sequential: true},
					{block: "Array4", weight: 0.15, readFrac: 0.9995, runLen: 500, burstWords: 1, sequential: true},
				},
				code: []codeUse{
					{block: "Mul", weight: 0.85, frameBytes: 72, stackTouch: 9},
					{block: "Add", weight: 0.15, frameBytes: 72, stackTouch: 9},
				},
				callEvery:  1,
				think:      1,
				fetchEvery: 1, fetchWords: 16,
			},
			{ // qsort(Array1) (Algorithm 2 line 7)
				share: 0.20,
				patterns: []pattern{
					{block: "Array1", weight: 0.9, readFrac: 0.60, runLen: 300, burstWords: 1},
					{block: "Array2", weight: 0.1, readFrac: 1.0, runLen: 120, burstWords: 1},
				},
				code:       []codeUse{{block: "Main", weight: 1, frameBytes: 120, stackTouch: 10}},
				callEvery:  1,
				think:      1,
				fetchEvery: 2, fetchWords: 12,
			},
		},
	}
}

// Suite returns the 12-program MiBench-substitute suite used by the
// Figs. 4-8 sweeps, in canonical order.
func Suite() []Workload {
	specs := suiteSpecs()
	out := make([]Workload, 0, len(specs))
	for _, s := range specs {
		out = append(out, build(s))
	}
	return out
}

// Names returns the canonical suite workload names in order.
func Names() []string {
	specs := suiteSpecs()
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.name)
	}
	return out
}

// ByName resolves a suite workload or the case study by name.
func ByName(name string) (Workload, error) {
	if name == CaseStudyName {
		return CaseStudy(), nil
	}
	for _, s := range suiteSpecs() {
		if s.name == name {
			return build(s), nil
		}
	}
	for _, s := range extraSpecs() {
		if s.name == name {
			return build(s), nil
		}
	}
	return Workload{}, fmt.Errorf("%w: %q", ErrUnknownWorkload, name)
}

// All returns the case study followed by the full suite.
func All() []Workload {
	return append([]Workload{CaseStudy()}, Suite()...)
}

func build(s spec) Workload {
	sortSegments(s)
	return Workload{Name: s.name, Description: s.desc, spec: s, prog: s.buildProgram()}
}

// sortSegments normalizes pattern order inside each segment so map
// iteration can never influence generation order (determinism guard).
func sortSegments(s spec) {
	for i := range s.segments {
		seg := &s.segments[i]
		sort.SliceStable(seg.patterns, func(a, b int) bool {
			return seg.patterns[a].block < seg.patterns[b].block
		})
	}
}

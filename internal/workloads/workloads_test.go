package workloads

import (
	"errors"
	"reflect"
	"testing"

	"ftspm/internal/program"
	"ftspm/internal/trace"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 12 {
		t.Fatalf("suite has %d workloads, want 12", len(suite))
	}
	seen := map[string]bool{}
	for _, w := range suite {
		if w.Name == "" || w.Description == "" {
			t.Errorf("workload missing name/description: %+v", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Program() == nil || w.Program().NumBlocks() < 4 {
			t.Errorf("%s: implausible program", w.Name)
		}
	}
	if got := Names(); len(got) != 12 {
		t.Errorf("Names() returned %d entries", len(got))
	}
	if len(All()) != 13 {
		t.Errorf("All() = %d workloads, want 13 (case study + suite)", len(All()))
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("sha")
	if err != nil || w.Name != "sha" {
		t.Errorf("ByName(sha) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("ByName(nope) err = %v", err)
	}
	cs, err := ByName(CaseStudyName)
	if err != nil || cs.Name != CaseStudyName {
		t.Errorf("ByName(casestudy) = %v, %v", cs.Name, err)
	}
}

func TestTraceDeterminism(t *testing.T) {
	for _, name := range []string{"qsort", "crc32", CaseStudyName} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := trace.Collect(w.Trace(0.05), 0)
		b := trace.Collect(w.Trace(0.05), 0)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: trace not deterministic", name)
		}
		if len(a) < 100 {
			t.Errorf("%s: trace too short (%d events) even at scale 0.05", name, len(a))
		}
	}
}

func TestTraceScale(t *testing.T) {
	w := CaseStudy()
	small := trace.Summarize(w.Trace(0.02))
	big := trace.Summarize(w.Trace(0.08))
	ratio := float64(big.Accesses()) / float64(small.Accesses())
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("4x scale produced %.2fx accesses", ratio)
	}
	// Non-positive scale falls back to the reference length.
	def := trace.Summarize(w.Trace(-1))
	ref := trace.Summarize(w.Trace(1.0))
	if def.Events != ref.Events {
		t.Errorf("scale<=0 events = %d, want reference %d", def.Events, ref.Events)
	}
}

func TestTraceAddressesResolve(t *testing.T) {
	// Every generated access must land inside a block of the program, in
	// the right address space.
	for _, w := range All() {
		st := w.Trace(0.03)
		p := w.Program()
		for {
			e, ok := st.Next()
			if !ok {
				break
			}
			if e.Kind != trace.KindAccess {
				continue
			}
			id, ok := p.FindAddr(e.Access.Addr)
			if !ok {
				t.Fatalf("%s: access at %#x outside all blocks", w.Name, e.Access.Addr)
			}
			b, err := p.Block(id)
			if err != nil {
				t.Fatal(err)
			}
			if e.Access.Space == trace.Code && b.Kind != program.CodeBlock {
				t.Fatalf("%s: code access hit %s", w.Name, b)
			}
			if e.Access.Space == trace.Data && !b.Kind.IsData() {
				t.Fatalf("%s: data access hit %s", w.Name, b)
			}
			if e.Access.Size < 1 {
				t.Fatalf("%s: access size %d", w.Name, e.Access.Size)
			}
		}
	}
}

func TestCaseStudyCharacter(t *testing.T) {
	// Verify the Table I shape: Array2/4 read-mostly, Array1/3 with
	// roughly 2:1 read:write, stack balanced, Mul the hottest code block,
	// Main too big for the 16 KB I-SPM.
	w := CaseStudy()
	p := w.Program()

	main, ok := p.Lookup("Main")
	if !ok {
		t.Fatal("no Main block")
	}
	mb, err := p.Block(main)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Size <= 16*1024 {
		t.Errorf("Main = %d bytes; must exceed the 16 KB I-SPM", mb.Size)
	}

	reads := map[string]int{}
	writes := map[string]int{}
	st := w.Trace(0.2)
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if e.Kind != trace.KindAccess {
			continue
		}
		id, ok := p.FindAddr(e.Access.Addr)
		if !ok {
			t.Fatal("unresolvable access")
		}
		b, err := p.Block(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.Access.Op == trace.Read {
			reads[b.Name]++
		} else {
			writes[b.Name]++
		}
	}

	for _, arr := range []string{"Array2", "Array4"} {
		if writes[arr]*100 > reads[arr] {
			t.Errorf("%s: %d writes vs %d reads; must be read-mostly (Table I)",
				arr, writes[arr], reads[arr])
		}
	}
	for _, arr := range []string{"Array1", "Array3"} {
		r := float64(reads[arr]) / float64(writes[arr]+1)
		if r < 1.2 || r > 4.0 {
			t.Errorf("%s: read/write ratio %.2f, want ~2 (Table I)", arr, r)
		}
	}
	if reads["Mul"] <= reads["Add"] || reads["Mul"] <= reads["Main"] {
		t.Errorf("Mul must be the hottest code block: Mul=%d Add=%d Main=%d",
			reads["Mul"], reads["Add"], reads["Main"])
	}
	if writes["Stack"] == 0 || reads["Stack"] == 0 {
		t.Error("stack traffic missing")
	}
}

func TestSuiteHasDiverseWriteMixes(t *testing.T) {
	// Fig. 4's point is that different programs use the regions very
	// differently; the suite must span read-mostly to write-heavy.
	var minFrac, maxFrac = 1.0, 0.0
	for _, w := range Suite() {
		st := trace.Summarize(w.Trace(0.05))
		frac := float64(st.Writes) / float64(st.Accesses())
		if frac < minFrac {
			minFrac = frac
		}
		if frac > maxFrac {
			maxFrac = frac
		}
	}
	if minFrac > 0.10 {
		t.Errorf("no read-dominated workload: min write fraction %.3f", minFrac)
	}
	if maxFrac < 0.20 {
		t.Errorf("no write-heavy workload: max write fraction %.3f", maxFrac)
	}
}

func TestCallsBalanced(t *testing.T) {
	for _, w := range All() {
		st := trace.Summarize(w.Trace(0.05))
		if st.Calls != st.Returns {
			t.Errorf("%s: %d calls vs %d returns", w.Name, st.Calls, st.Returns)
		}
		if st.Calls > 0 && st.MaxStackBytes == 0 {
			t.Errorf("%s: calls but no stack depth", w.Name)
		}
	}
}

func TestSuiteCharacterBands(t *testing.T) {
	// Locks each generator to the access character its spec documents
	// (and that EXPERIMENTS.md's recorded numbers depend on): the data
	// write fraction per workload must stay inside its band.
	bands := map[string][2]float64{
		"qsort":        {0.25, 0.50}, // write-hot sort + stack churn
		"sha":          {0.10, 0.30},
		"crc32":        {0.00, 0.10}, // nearly pure reads
		"dijkstra":     {0.05, 0.25},
		"fft":          {0.20, 0.45}, // balanced butterflies
		"stringsearch": {0.00, 0.12},
		"bitcount":     {0.00, 0.15},
		"basicmath":    {0.15, 0.40},
		"susan":        {0.15, 0.40}, // write-hot output tile
		"jpeg":         {0.15, 0.45},
		"adpcm":        {0.10, 0.35},
		"patricia":     {0.10, 0.35},
	}
	for _, w := range Suite() {
		band, ok := bands[w.Name]
		if !ok {
			t.Errorf("no character band for %s — add one", w.Name)
			continue
		}
		st := w.Trace(0.1)
		var dataReads, dataWrites int
		for {
			e, ok := st.Next()
			if !ok {
				break
			}
			if e.Kind != trace.KindAccess || e.Access.Space != trace.Data {
				continue
			}
			if e.Access.Op == trace.Read {
				dataReads++
			} else {
				dataWrites++
			}
		}
		frac := float64(dataWrites) / float64(dataReads+dataWrites)
		if frac < band[0] || frac > band[1] {
			t.Errorf("%s: data write fraction %.3f outside documented band [%.2f, %.2f]",
				w.Name, frac, band[0], band[1])
		}
	}
}

#!/usr/bin/env bash
# cache_smoke.sh — process-level smoke test of the content-addressed
# result cache (DESIGN.md §16).
#
# Boots the real ftspmd with a disk cache tier, runs the same sweep
# twice, and asserts the memoization contract: run 2 is answered from
# the cache (>0 hits on /healthz) with a result payload byte-identical
# to run 1. Then SIGTERMs the daemon and restarts it on the same cache
# file: the disk tier must survive the restart (a fresh process serves
# the sweep from disk-promoted entries, again byte-identical) and the
# warm /v1/evaluate + /v1/map paths must report cache hits.
set -u

DIR=$(mktemp -d)
PID=
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$DIR"' EXIT

go build -o "$DIR/ftspmd" ./cmd/ftspmd || exit 1

ADDR=127.0.0.1:8087
BASE="http://$ADDR"
CACHE="$DIR/results.cache"

start_daemon() {
  "$DIR/ftspmd" -listen "$ADDR" -data "$DIR/data" -cache "$CACHE" >"$1" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    curl -sf "$BASE/readyz" >/dev/null 2>&1 && return 0
    kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup"; cat "$1"; exit 1; }
    sleep 0.1
  done
  echo "daemon never became ready"; cat "$1"; exit 1
}

# run_sweep OUT CKPT — submits a sweep (with its own checkpoint name,
# so runs on a restarted daemon never collide with a previous journal),
# polls the job to completion, and writes the result payload (the
# deterministic sweep summary) to OUT.
run_sweep() {
  local out=$1 ckpt=$2
  curl -sf -X POST "$BASE/v1/sweep" -d "{\"scale\":0.05,\"checkpoint\":\"$ckpt\"}" \
    -o "$DIR/submit.json" || { echo "sweep submit failed"; exit 1; }
  local id
  id=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$DIR/submit.json")
  [ -n "$id" ] || { echo "no job id in reply:"; cat "$DIR/submit.json"; exit 1; }
  for _ in $(seq 1 600); do
    curl -sf "$BASE/v1/jobs/$id" -o "$DIR/job.json" || { echo "job poll failed"; exit 1; }
    case $(sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' "$DIR/job.json") in
      done)
        python3 -c 'import json,sys; json.dump(json.load(open(sys.argv[1]))["result"], open(sys.argv[2],"w"), sort_keys=True)' \
          "$DIR/job.json" "$out"
        return 0 ;;
      failed|canceled|interrupted)
        echo "sweep job ended badly:"; cat "$DIR/job.json"; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "sweep job never finished"; cat "$DIR/job.json"; exit 1
}

# cache_stat FIELD — reads one cache counter off /healthz.
cache_stat() {
  curl -sf "$BASE/healthz" | python3 -c \
    'import json,sys; print(json.load(sys.stdin)["cache"][sys.argv[1]])' "$1"
}

echo "== boot ftspmd with a disk cache"
start_daemon "$DIR/daemon.log"

echo "== sweep run 1 (cold)"
run_sweep "$DIR/run1.json" run1.ckpt
HITS1=$(cache_stat hits)

echo "== sweep run 2 (must be served from the cache)"
run_sweep "$DIR/run2.json" run2.ckpt
HITS2=$(cache_stat hits)
[ "$HITS2" -gt "$HITS1" ] || {
  echo "run 2 produced no cache hits (run1=$HITS1 run2=$HITS2)"; exit 1; }
cmp -s "$DIR/run1.json" "$DIR/run2.json" || {
  echo "cached sweep diverged from cold run:"
  diff "$DIR/run1.json" "$DIR/run2.json" | head; exit 1; }

echo "== SIGTERM, expect clean drain"
kill -TERM "$PID"
wait "$PID" || { echo "drain failed"; cat "$DIR/daemon.log"; exit 1; }
[ -s "$CACHE" ] || { echo "no disk cache file written"; exit 1; }

echo "== restart on the same cache file: disk tier must survive"
start_daemon "$DIR/daemon2.log"
run_sweep "$DIR/run3.json" run3.ckpt
cmp -s "$DIR/run1.json" "$DIR/run3.json" || {
  echo "post-restart sweep diverged from original run:"
  diff "$DIR/run1.json" "$DIR/run3.json" | head; exit 1; }
DISK_HITS=$(cache_stat disk_hits)
[ "$DISK_HITS" -gt 0 ] || {
  echo "fresh process reported no disk-tier hits"; curl -sf "$BASE/healthz"; exit 1; }

echo "== warm /v1/evaluate flags the hit in its header"
curl -sfi -X POST "$BASE/v1/evaluate" \
  -d '{"workload":"sha","structure":"ftspm","scale":0.05}' -o "$DIR/evaluate.raw" \
  || { echo "evaluate failed"; exit 1; }
grep -qi '^X-Ftspm-Cache: hit' "$DIR/evaluate.raw" || {
  echo "evaluate after a sweep was not a cache hit:"; head -20 "$DIR/evaluate.raw"; exit 1; }

echo "== /v1/map batch composes cached placements"
curl -sf -X POST "$BASE/v1/map" -d '{"scale":0.05}' -o "$DIR/map.json" \
  || { echo "map failed"; exit 1; }
python3 - "$DIR/map.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["cache_misses"] == 0, f"warm map recomputed {m['cache_misses']} pairs"
assert m["cache_hits"] == len(m["entries"]) > 0, m["cache_hits"]
EOF

kill -TERM "$PID"
wait "$PID" || { echo "second drain failed"; cat "$DIR/daemon2.log"; exit 1; }

echo "cache smoke OK (warm sweep byte-identical, disk tier survives restart, map/evaluate served from memos)"

#!/usr/bin/env bash
# fabric_smoke.sh — process-level smoke test of the distributed fabric.
#
# Builds the real binaries, runs a single-node golden soak, then shards
# the same campaign across 3 real ftspmd workers — SIGKILLing one of
# them mid-campaign — and asserts the merged distributed report is
# byte-for-byte identical to the single-node golden. This is the
# acceptance check of the fabric: fault-tolerant sharding must be
# invisible in the results.
set -u

DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

# Real binaries: the SIGKILL must hit a real ftspmd process.
go build -o "$DIR/ftspmd" ./cmd/ftspmd || exit 1
go build -o "$DIR/ftspm-soak" ./cmd/ftspm-soak || exit 1

ARGS=(-structures ftspm,sram,stt -trials 150 -scale 0.05 -strike 0.01 -seed 11)

echo "== single-node golden"
"$DIR/ftspm-soak" "${ARGS[@]}" -json "$DIR/golden.json" >"$DIR/golden.out" 2>&1 || {
  echo "golden run failed"; cat "$DIR/golden.out"; exit 1; }

echo "== start 3 ftspmd workers"
PORTS=(8171 8172 8173)
PIDS=()
for p in "${PORTS[@]}"; do
  "$DIR/ftspmd" -listen "127.0.0.1:$p" -data "$DIR/data$p" >"$DIR/daemon$p.log" 2>&1 &
  PIDS+=($!)
done
for p in "${PORTS[@]}"; do
  ok=
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$p/readyz" >/dev/null 2>&1 && { ok=1; break; }
    sleep 0.1
  done
  [ -n "$ok" ] || { echo "worker on :$p never became ready"; cat "$DIR/daemon$p.log"; exit 1; }
done

echo "== distributed run, SIGKILL one worker mid-campaign"
"$DIR/ftspm-soak" "${ARGS[@]}" \
  -workers 127.0.0.1:8171,127.0.0.1:8172,127.0.0.1:8173 \
  -lease 5s -checkpoint "$DIR/dist.ckpt" -json "$DIR/dist.json" \
  >"$DIR/dist.out" 2>"$DIR/dist.err" &
RUN=$!

# Wait until the coordinator has journaled some merged results, then
# SIGKILL the third worker mid-soak.
KILLED=
for _ in $(seq 1 400); do
  if [ -f "$DIR/dist.ckpt" ] && [ "$(wc -l <"$DIR/dist.ckpt")" -ge 20 ]; then
    kill -KILL "${PIDS[2]}"
    KILLED=1
    echo "   SIGKILLed worker :8173 at $(wc -l <"$DIR/dist.ckpt") journaled lines"
    break
  fi
  kill -0 "$RUN" 2>/dev/null || break
  sleep 0.05
done
[ -n "$KILLED" ] || { echo "campaign finished before the kill; increase -trials"; exit 1; }

wait "$RUN"
STATUS=$?
[ "$STATUS" = 0 ] || {
  echo "distributed run exited $STATUS, want 0 (survivors must absorb the killed worker's jobs)"
  cat "$DIR/dist.out" "$DIR/dist.err"; exit 1; }

# The coordinator must have noticed and reported the dead worker.
grep -q "127.0.0.1:8173" "$DIR/dist.err" || {
  echo "coordinator never reported the killed worker:"; cat "$DIR/dist.err"; exit 1; }

echo "== byte-compare distributed vs single-node report"
cmp "$DIR/golden.json" "$DIR/dist.json" || {
  echo "distributed report differs from single-node golden"
  head -50 "$DIR/golden.json" "$DIR/dist.json"; exit 1; }

echo "fabric smoke OK (3 workers, one SIGKILLed mid-soak, byte-identical report)"

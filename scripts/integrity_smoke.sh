#!/usr/bin/env bash
# integrity_smoke.sh — process-level smoke test of end-to-end result
# integrity.
#
# Builds the real binaries, runs a single-node golden soak, then shards
# the same campaign across 3 real ftspmd workers — one of them started
# with -chaos-corrupt 1, a byzantine worker that silently corrupts every
# payload it computes and honestly checksums the corrupted bytes — with
# full audit re-execution (-audit-frac 1). Asserts the corrupter is
# convicted and quarantined, the merged report is byte-for-byte
# identical to the golden, the checkpoint journal fscks clean with
# ftspm-verify, and a single flipped journal byte makes ftspm-verify
# exit nonzero.
set -u

DIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$DIR"' EXIT

go build -o "$DIR/ftspmd" ./cmd/ftspmd || exit 1
go build -o "$DIR/ftspm-soak" ./cmd/ftspm-soak || exit 1
go build -o "$DIR/ftspm-verify" ./cmd/ftspm-verify || exit 1

ARGS=(-structures ftspm,sram -trials 24 -scale 0.05 -strike 0.01 -seed 23)

echo "== single-node golden"
"$DIR/ftspm-soak" "${ARGS[@]}" -json "$DIR/golden.json" >"$DIR/golden.out" 2>&1 || {
  echo "golden run failed"; cat "$DIR/golden.out"; exit 1; }

echo "== start 3 ftspmd workers, one byzantine (-chaos-corrupt 1)"
PORTS=(8181 8182 8183)
BYZ_PORT=8183
for p in "${PORTS[@]}"; do
  CHAOS=()
  [ "$p" = "$BYZ_PORT" ] && CHAOS=(-chaos-corrupt 1)
  "$DIR/ftspmd" -listen "127.0.0.1:$p" -data "$DIR/data$p" "${CHAOS[@]}" \
    >"$DIR/daemon$p.log" 2>&1 &
done
for p in "${PORTS[@]}"; do
  ok=
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$p/readyz" >/dev/null 2>&1 && { ok=1; break; }
    sleep 0.1
  done
  [ -n "$ok" ] || { echo "worker on :$p never became ready"; cat "$DIR/daemon$p.log"; exit 1; }
done

echo "== distributed run with full audit"
"$DIR/ftspm-soak" "${ARGS[@]}" \
  -workers 127.0.0.1:8181,127.0.0.1:8182,127.0.0.1:$BYZ_PORT \
  -lease 10s -audit-frac 1 -checkpoint "$DIR/dist.ckpt" -json "$DIR/dist.json" \
  >"$DIR/dist.out" 2>"$DIR/dist.err"
STATUS=$?
[ "$STATUS" = 0 ] || {
  echo "distributed run exited $STATUS, want 0 (audit must absorb the corrupter)"
  cat "$DIR/dist.out" "$DIR/dist.err"; exit 1; }

echo "== corrupter convicted and quarantined"
grep -q "127.0.0.1:$BYZ_PORT CONVICTED" "$DIR/dist.err" || {
  echo "byzantine worker never convicted:"; cat "$DIR/dist.err"; exit 1; }
grep -q "DIVERGENCE" "$DIR/dist.out" || {
  echo "no divergence itemized in the report:"; cat "$DIR/dist.out"; exit 1; }

echo "== byte-compare distributed vs single-node report"
cmp "$DIR/golden.json" "$DIR/dist.json" || {
  echo "report with byzantine worker differs from single-node golden"
  head -50 "$DIR/golden.json" "$DIR/dist.json"; exit 1; }

echo "== journal fscks clean"
"$DIR/ftspm-verify" "$DIR/dist.ckpt" >"$DIR/verify.out" || {
  echo "ftspm-verify rejected a clean journal:"; cat "$DIR/verify.out"; exit 1; }
grep -q "journal v2" "$DIR/verify.out" || {
  echo "journal is not v2:"; cat "$DIR/verify.out"; exit 1; }

echo "== flipped journal byte detected"
# Flip one bit in the middle of the journal body (past the header line).
python3 - "$DIR/dist.ckpt" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
i = len(b) // 2
while b[i] in (0x0a, 0x0d):
    i += 1
b[i] ^= 0x04
open(p, "wb").write(bytes(b))
EOF
if "$DIR/ftspm-verify" "$DIR/dist.ckpt" >"$DIR/verify2.out" 2>&1; then
  echo "ftspm-verify missed a flipped byte:"; cat "$DIR/verify2.out"; exit 1
fi
grep -qi "bitrot" "$DIR/verify2.out" || {
  echo "corruption not diagnosed as bitrot:"; cat "$DIR/verify2.out"; exit 1; }

echo "integrity smoke OK (byzantine worker quarantined, byte-identical report, journal fsck catches bitrot)"

#!/usr/bin/env bash
# resume_smoke.sh — interrupted-resume smoke test for the crash-safe
# soak campaign runner.
#
# Golden run -> checkpointed run SIGTERMed mid-campaign -> resumed run,
# then the resumed JSON report must be byte-identical to the golden one.
# Exercises the real process-level path: signal handling, graceful
# drain, checkpoint flush, exit code 3, and -resume.
set -u

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# A real binary, not `go run`: the SIGTERM must reach the soak process
# itself, not the go tool wrapping it.
go build -o "$DIR/ftspm-soak" ./cmd/ftspm-soak || exit 1
SOAK="$DIR/ftspm-soak"

# Big enough that the SIGTERM lands mid-campaign, small enough for CI.
ARGS=(-structures ftspm,sram,stt -trials 6 -scale 0.05 -strike 0.01 -seed 11 -parallel 2)

echo "== golden (uninterrupted) run"
$SOAK "${ARGS[@]}" -json "$DIR/golden.json" >"$DIR/golden.log" || {
  echo "golden run failed"; cat "$DIR/golden.log"; exit 1; }

echo "== interrupted run (SIGTERM once the checkpoint appears)"
$SOAK "${ARGS[@]}" -checkpoint "$DIR/soak.ckpt" -json "$DIR/interrupted.json" \
  >"$DIR/interrupted.log" 2>&1 &
PID=$!
# Wait for the journal to hold at least one finished trial (header + 1
# record), then interrupt.
for _ in $(seq 1 200); do
  [ -f "$DIR/soak.ckpt" ] && [ "$(wc -l <"$DIR/soak.ckpt")" -ge 2 ] && break
  sleep 0.05
done
kill -TERM "$PID" 2>/dev/null
wait "$PID"
STATUS=$?
# 3 = drained and salvaged (the expected case); 0 = the campaign beat
# the signal, which still leaves a complete journal for the resume leg.
if [ "$STATUS" != 3 ] && [ "$STATUS" != 0 ]; then
  echo "interrupted run exited $STATUS (want 3, or 0 if it finished first)"
  cat "$DIR/interrupted.log"
  exit 1
fi
echo "   interrupted run exited $STATUS"

echo "== resumed run"
$SOAK "${ARGS[@]}" -checkpoint "$DIR/soak.ckpt" -resume -json "$DIR/resumed.json" \
  >"$DIR/resumed.log" || { echo "resume failed"; cat "$DIR/resumed.log"; exit 1; }
grep -q "resumed" "$DIR/resumed.log" || {
  echo "resume log does not mention resumed trials"; cat "$DIR/resumed.log"; exit 1; }

echo "== diff resumed vs golden"
if ! cmp -s "$DIR/golden.json" "$DIR/resumed.json"; then
  echo "resumed report is NOT byte-identical to the golden run:"
  diff "$DIR/golden.json" "$DIR/resumed.json" | head -50
  exit 1
fi

echo "== resume onto the now-complete checkpoint must re-run nothing"
$SOAK "${ARGS[@]}" -checkpoint "$DIR/soak.ckpt" -resume -json "$DIR/noop.json" \
  >"$DIR/noop.log" || { echo "no-op resume failed"; cat "$DIR/noop.log"; exit 1; }
grep -q "resumed 18 finished trials" "$DIR/noop.log" || {
  echo "no-op resume re-ran trials"; cat "$DIR/noop.log"; exit 1; }
cmp -s "$DIR/golden.json" "$DIR/noop.json" || { echo "no-op resume drifted"; exit 1; }

echo "resume smoke OK (byte-identical after interrupt + resume)"

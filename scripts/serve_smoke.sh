#!/usr/bin/env bash
# serve_smoke.sh — process-level smoke test for the ftspmd daemon.
#
# Boots the real binary, waits for /readyz, runs one synchronous
# evaluation, submits an async soak job, SIGTERMs the daemon while the
# job runs, and asserts the graceful-drain contract: the process exits 0
# and the interrupted job left a resumable checkpoint behind.
set -u

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# A real binary, not `go run`: the SIGTERM must reach ftspmd itself,
# not the go tool wrapping it.
go build -o "$DIR/ftspmd" ./cmd/ftspmd || exit 1

ADDR=127.0.0.1:8077
BASE="http://$ADDR"
"$DIR/ftspmd" -listen "$ADDR" -data "$DIR/data" >"$DIR/daemon.log" 2>&1 &
PID=$!

echo "== wait for readiness"
READY=
for _ in $(seq 1 100); do
  if curl -sf "$BASE/readyz" >/dev/null 2>&1; then READY=1; break; fi
  kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup"; cat "$DIR/daemon.log"; exit 1; }
  sleep 0.1
done
[ -n "$READY" ] || { echo "daemon never became ready"; cat "$DIR/daemon.log"; exit 1; }

echo "== synchronous evaluate"
curl -sf -X POST "$BASE/v1/evaluate" \
  -d '{"workload":"casestudy","structure":"ftspm","scale":0.05}' \
  -o "$DIR/evaluate.json" || { echo "evaluate failed"; cat "$DIR/daemon.log"; exit 1; }
grep -q '"cycles"' "$DIR/evaluate.json" || {
  echo "evaluate reply has no cycles:"; cat "$DIR/evaluate.json"; exit 1; }

echo "== submit an async soak job"
curl -sf -X POST "$BASE/v1/soak" \
  -d '{"trials":200,"scale":0.02,"strike":0.01,"seed":11,"workers":1,"checkpoint":"smoke.ckpt"}' \
  -o "$DIR/job.json" || { echo "soak submit failed"; cat "$DIR/daemon.log"; exit 1; }
JOB_ID=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$DIR/job.json")
[ -n "$JOB_ID" ] || { echo "no job id in reply:"; cat "$DIR/job.json"; exit 1; }

# Let the campaign open its checkpoint and journal at least one trial.
for _ in $(seq 1 100); do
  [ -f "$DIR/data/smoke.ckpt" ] && [ "$(wc -l <"$DIR/data/smoke.ckpt")" -ge 2 ] && break
  sleep 0.05
done

echo "== SIGTERM mid-job, expect graceful drain and exit 0"
kill -TERM "$PID"
wait "$PID"
STATUS=$?
if [ "$STATUS" != 0 ]; then
  echo "daemon exited $STATUS, want 0 (graceful drain)"
  cat "$DIR/daemon.log"
  exit 1
fi
grep -q "drained cleanly" "$DIR/daemon.log" || {
  echo "daemon log missing drain confirmation:"; cat "$DIR/daemon.log"; exit 1; }
[ -f "$DIR/data/smoke.ckpt" ] || { echo "interrupted job left no checkpoint"; exit 1; }

echo "== restart and resume the interrupted job"
"$DIR/ftspmd" -listen "$ADDR" -data "$DIR/data" >"$DIR/daemon2.log" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
# Resuming proves the checkpoint survived the drain intact; the job is
# long, so a successful 202 with resume=true is the assertion, then we
# drain again.
curl -sf -X POST "$BASE/v1/soak" \
  -d '{"trials":200,"scale":0.02,"strike":0.01,"seed":11,"workers":1,"checkpoint":"smoke.ckpt","resume":true}' \
  -o "$DIR/resume.json" || { echo "resume submit failed"; cat "$DIR/daemon2.log"; exit 1; }
grep -q '"state"' "$DIR/resume.json" || { echo "bad resume reply:"; cat "$DIR/resume.json"; exit 1; }
kill -TERM "$PID"
wait "$PID" || { echo "second drain failed"; cat "$DIR/daemon2.log"; exit 1; }

echo "serve smoke OK (ready, evaluate, SIGTERM drain exit 0, resumable checkpoint)"

#!/usr/bin/env bash
# storm_smoke.sh — correlated-storm smoke test for the soak campaign
# runner.
#
# Runs a small storm soak with the adaptive defenses armed twice — once
# straight through, once SIGTERMed mid-campaign and resumed — and the
# two JSON reports must be byte-identical. Storm campaigns always run
# the scalar simulator (the packed engine declines them), so this also
# exercises the fallback path end to end at the process level.
set -u

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# A real binary, not `go run`: the SIGTERM must reach the soak process
# itself, not the go tool wrapping it.
go build -o "$DIR/ftspm-soak" ./cmd/ftspm-soak || exit 1
SOAK="$DIR/ftspm-soak"

# A violent storm so the adaptive machinery actually engages, big
# enough that the SIGTERM lands mid-campaign, small enough for CI.
ARGS=(-structures ftspm,sram -trials 6 -scale 0.05 -seed 17 -parallel 2
  -storm -storm-intensity 0.25 -storm-calm-dwell 1000 -storm-dwell 300
  -target both -adaptive)

echo "== golden (uninterrupted) storm run"
$SOAK "${ARGS[@]}" -json "$DIR/golden.json" >"$DIR/golden.log" || {
  echo "golden storm run failed"; cat "$DIR/golden.log"; exit 1; }
grep -q "storm" "$DIR/golden.log" || {
  echo "banner does not mention the storm"; cat "$DIR/golden.log"; exit 1; }

echo "== interrupted storm run (SIGTERM once the checkpoint appears)"
$SOAK "${ARGS[@]}" -checkpoint "$DIR/storm.ckpt" -json "$DIR/interrupted.json" \
  >"$DIR/interrupted.log" 2>&1 &
PID=$!
# Wait for the journal to hold at least one finished trial (header + 1
# record), then interrupt.
for _ in $(seq 1 200); do
  [ -f "$DIR/storm.ckpt" ] && [ "$(wc -l <"$DIR/storm.ckpt")" -ge 2 ] && break
  sleep 0.05
done
kill -TERM "$PID" 2>/dev/null
wait "$PID"
STATUS=$?
# 3 = drained and salvaged (the expected case); 0 = the campaign beat
# the signal, which still leaves a complete journal for the resume leg.
if [ "$STATUS" != 3 ] && [ "$STATUS" != 0 ]; then
  echo "interrupted run exited $STATUS (want 3, or 0 if it finished first)"
  cat "$DIR/interrupted.log"
  exit 1
fi
echo "   interrupted run exited $STATUS"

echo "== resumed storm run"
$SOAK "${ARGS[@]}" -checkpoint "$DIR/storm.ckpt" -resume -json "$DIR/resumed.json" \
  >"$DIR/resumed.log" || { echo "resume failed"; cat "$DIR/resumed.log"; exit 1; }
grep -q "resumed" "$DIR/resumed.log" || {
  echo "resume log does not mention resumed trials"; cat "$DIR/resumed.log"; exit 1; }

echo "== diff resumed vs golden"
if ! cmp -s "$DIR/golden.json" "$DIR/resumed.json"; then
  echo "resumed storm report is NOT byte-identical to the golden run:"
  diff "$DIR/golden.json" "$DIR/resumed.json" | head -50
  exit 1
fi

echo "== a storm checkpoint must not resume a non-storm campaign"
$SOAK -structures ftspm,sram -trials 6 -scale 0.05 -seed 17 -parallel 2 \
  -checkpoint "$DIR/storm.ckpt" -resume -json "$DIR/mismatch.json" \
  >"$DIR/mismatch.log" 2>&1
if [ $? -eq 0 ]; then
  echo "non-storm campaign resumed from a storm checkpoint"; cat "$DIR/mismatch.log"; exit 1
fi

echo "storm smoke OK (byte-identical after interrupt + resume)"

// Golden soak-campaign test: the committed BENCH_soak.json baseline
// must reproduce exactly through BOTH soak engines — the scalar
// simulator and the bit-parallel packed engine (internal/simd). This is
// the repo-level seal on the packed engine's correctness contract: its
// reports are byte-identical to the scalar path's, and both match the
// committed artifact bit for bit.
package ftspm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"ftspm/internal/core"
	"ftspm/internal/experiments"
	"ftspm/internal/faults"
	"ftspm/internal/spm"
)

// goldenSoakOptions mirrors BENCH_soak.json's recorded command:
// go run ./cmd/ftspm-soak -trials 8 -scale 0.05 -strike 0.01 -seed 1.
func goldenSoakOptions(lanes int) experiments.SoakOptions {
	rec := spm.DefaultRecovery()
	return experiments.SoakOptions{
		Trials: 8, Scale: 0.05, StrikesPerAccess: 0.01, Seed: 1,
		Recovery: &rec, Lanes: lanes,
	}
}

var goldenSoakStructures = []core.Structure{
	core.StructFTSPM, core.StructPureSRAM, core.StructPureSTT,
}

// goldenStormOptions mirrors BENCH_soak.json's recorded storm command:
// go run ./cmd/ftspm-soak -trials 4 -scale 0.05 -seed 1 -storm -adaptive.
// The flag defaults resolve to the default storm with the adaptive
// defenses armed.
func goldenStormOptions(lanes int) experiments.SoakOptions {
	rec := spm.DefaultRecovery()
	ad := spm.DefaultAdaptive()
	rec.Adaptive = &ad
	return experiments.SoakOptions{
		Trials: 4, Scale: 0.05, StrikesPerAccess: 0.01, Seed: 1,
		Recovery: &rec, Lanes: lanes,
		Storm: &faults.StormConfig{
			CalmStrikesPerAccess:  0.001,
			StormStrikesPerAccess: 0.2,
			MeanCalmAccesses:      4000,
			MeanStormAccesses:     400,
			SpatialSpan:           2,
			ThermalFactor:         1,
			HotBlocks:             4,
		},
	}
}

func runGoldenSoak(t *testing.T, opts experiments.SoakOptions, lanes int) [][]byte {
	t.Helper()
	opts.Lanes = lanes
	reports, status, err := experiments.RunSoakCampaign(
		context.Background(), opts, goldenSoakStructures,
		experiments.CampaignConfig{})
	if err != nil {
		t.Fatalf("lanes=%d: %v", lanes, err)
	}
	if f := status.FirstFailure(); f != nil {
		t.Fatalf("lanes=%d: %v", lanes, f)
	}
	out := make([][]byte, len(reports))
	for i, rep := range reports {
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = blob
	}
	return out
}

func TestSoakGoldenBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden soak campaign in -short mode")
	}
	raw, err := os.ReadFile("BENCH_soak.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden struct {
		Command string            `json:"command"`
		Reports []json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden.Reports) != len(goldenSoakStructures) {
		t.Fatalf("BENCH_soak.json has %d reports, want %d", len(golden.Reports), len(goldenSoakStructures))
	}

	packed := runGoldenSoak(t, goldenSoakOptions(0), 0)
	scalar := runGoldenSoak(t, goldenSoakOptions(1), 1)
	for i, s := range goldenSoakStructures {
		var want bytes.Buffer
		if err := json.Compact(&want, golden.Reports[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(packed[i], scalar[i]) {
			t.Errorf("%v: packed and scalar reports diverge:\npacked: %s\nscalar: %s",
				s, packed[i], scalar[i])
		}
		if !bytes.Equal(packed[i], want.Bytes()) {
			t.Errorf("%v: packed report drifted from BENCH_soak.json:\ngot:  %s\nwant: %s",
				s, packed[i], want.Bytes())
		}
	}
}

// TestSoakGoldenStormBaseline seals the correlated-storm campaign the
// same way: the committed storm_reports must reproduce bit for bit,
// and the auto-lane path (which falls back to the scalar simulator
// because the packed engine declines storms) must match the forced
// scalar path exactly.
func TestSoakGoldenStormBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden storm campaign in -short mode")
	}
	raw, err := os.ReadFile("BENCH_soak.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden struct {
		StormCommand string            `json:"storm_command"`
		StormReports []json.RawMessage `json:"storm_reports"`
	}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden.StormReports) != len(goldenSoakStructures) {
		t.Fatalf("BENCH_soak.json has %d storm reports, want %d",
			len(golden.StormReports), len(goldenSoakStructures))
	}

	auto := runGoldenSoak(t, goldenStormOptions(0), 0)
	scalar := runGoldenSoak(t, goldenStormOptions(1), 1)
	for i, s := range goldenSoakStructures {
		var want bytes.Buffer
		if err := json.Compact(&want, golden.StormReports[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(auto[i], scalar[i]) {
			t.Errorf("%v: storm fallback and scalar reports diverge:\nauto:   %s\nscalar: %s",
				s, auto[i], scalar[i])
		}
		if !bytes.Equal(auto[i], want.Bytes()) {
			t.Errorf("%v: storm report drifted from BENCH_soak.json:\ngot:  %s\nwant: %s",
				s, auto[i], want.Bytes())
		}
	}
}
